//! The parameter service: one request handler shared by every transport.
//!
//! [`PsService::handle`] maps a request frame to its response frames;
//! [`PsService::handle_bytes`] runs the same logic through the full wire
//! codec. The TCP server and the in-memory transport both call into here,
//! so a sweep under the in-memory transport exercises byte-identical
//! frames to a real socket run.
//!
//! Fetches are served from *epoch snapshots*: at each epoch boundary the
//! coordinator publishes the assembled parameter vector with its per-shard
//! version manifest, and workers fetch against that epoch. A worker that
//! already caches a shard at the manifest version gets it skipped — the
//! partial-fetch path that makes sharding pay off on the wire. Pushes go
//! straight to the live per-shard merge.

use crate::merge::ShardedAssimilator;
use crate::wire::{decode_all, error_frame, FetchReq, FetchSummary, Frame, FrameKind, WireError};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vc_tensor::codec::{decode_f32s, encode_f32s};

/// Counter names for the service's wire accounting.
pub const PS_BYTES_RX: &str = "ps_bytes_rx";
/// Counter: response bytes the service produced.
pub const PS_BYTES_TX: &str = "ps_bytes_tx";

/// One epoch's published parameters, pre-encoded per shard.
struct EpochSnapshot {
    manifest: Vec<u64>,
    blobs: Vec<Bytes>,
}

/// Monotonic counters describing the service's traffic. All counts are
/// deterministic functions of the request stream, so DST reports can
/// assert on them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PsOps {
    /// Fetch requests served.
    pub fetches: u64,
    /// Shard blobs actually sent.
    pub shards_sent: u64,
    /// Shards skipped because the worker's cache was current.
    pub cache_hits: u64,
    /// Push merges performed.
    pub pushes: u64,
    /// Request bytes received (frame-encoded size).
    pub bytes_rx: u64,
    /// Response bytes sent (frame-encoded size).
    pub bytes_tx: u64,
}

#[derive(Default)]
struct Metrics {
    fetches: AtomicU64,
    shards_sent: AtomicU64,
    cache_hits: AtomicU64,
    pushes: AtomicU64,
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
}

/// The sharded parameter service.
pub struct PsService {
    assim: Arc<ShardedAssimilator>,
    snapshots: RwLock<HashMap<u64, EpochSnapshot>>,
    metrics: Metrics,
}

impl PsService {
    /// Wraps an assimilator as a frame-serving service.
    pub fn new(assim: Arc<ShardedAssimilator>) -> Self {
        PsService {
            assim,
            snapshots: RwLock::new(HashMap::new()),
            metrics: Metrics::default(),
        }
    }

    /// The merge pipeline behind this service.
    pub fn assimilator(&self) -> &Arc<ShardedAssimilator> {
        &self.assim
    }

    /// Publishes `params` as the snapshot workers fetch for `epoch`.
    /// `manifest` carries each shard's store version at publish time.
    pub fn publish_snapshot(&self, epoch: u64, params: &[f32], manifest: &[u64]) {
        let layout = self.assim.layout();
        assert_eq!(params.len(), layout.param_count(), "snapshot length");
        assert_eq!(manifest.len(), layout.shards(), "manifest length");
        let blobs = layout
            .iter()
            .map(|(_, range)| encode_f32s(&params[range]))
            .collect();
        self.snapshots.write().insert(
            epoch,
            EpochSnapshot {
                manifest: manifest.to_vec(),
                blobs,
            },
        );
    }

    /// Drops snapshots older than `keep_from` (epochs are monotonic; the
    /// coordinator retires snapshots its checkpoints no longer need).
    pub fn retire_snapshots_before(&self, keep_from: u64) {
        self.snapshots.write().retain(|&e, _| e >= keep_from);
    }

    /// Reassembles the full parameter vector of a published epoch
    /// snapshot, if still retained.
    pub fn snapshot_params(&self, epoch: u64) -> Option<Vec<f32>> {
        let snaps = self.snapshots.read();
        let snap = snaps.get(&epoch)?;
        let mut full = Vec::with_capacity(self.assim.layout().param_count());
        for blob in &snap.blobs {
            let part = decode_f32s(blob).expect("snapshot blobs are valid");
            full.extend_from_slice(&part);
        }
        Some(full)
    }

    /// Traffic counters so far.
    pub fn ops(&self) -> PsOps {
        PsOps {
            fetches: self.metrics.fetches.load(Ordering::Relaxed),
            shards_sent: self.metrics.shards_sent.load(Ordering::Relaxed),
            cache_hits: self.metrics.cache_hits.load(Ordering::Relaxed),
            pushes: self.metrics.pushes.load(Ordering::Relaxed),
            bytes_rx: self.metrics.bytes_rx.load(Ordering::Relaxed),
            bytes_tx: self.metrics.bytes_tx.load(Ordering::Relaxed),
        }
    }

    /// Handles one request frame, appending response frames to `out`.
    /// Protocol-level failures become [`FrameKind::Error`] frames rather
    /// than errors — the connection survives a bad request.
    pub fn handle(&self, req: &Frame, out: &mut Vec<Frame>) {
        let before = out.len();
        self.metrics
            .bytes_rx
            .fetch_add(req.encoded_len() as u64, Ordering::Relaxed);
        match req.kind {
            FrameKind::Fetch => self.handle_fetch(req, out),
            FrameKind::Push => self.handle_push(req, out),
            _ => out.push(error_frame("unexpected frame kind")),
        }
        let tx: usize = out[before..].iter().map(|f| f.encoded_len()).sum();
        self.metrics
            .bytes_tx
            .fetch_add(tx as u64, Ordering::Relaxed);
    }

    fn handle_fetch(&self, req: &Frame, out: &mut Vec<Frame>) {
        let fetch = match FetchReq::from_frame(req) {
            Ok(f) => f,
            Err(e) => {
                out.push(error_frame(&format!("bad fetch: {e}")));
                return;
            }
        };
        let snaps = self.snapshots.read();
        let Some(snap) = snaps.get(&fetch.epoch) else {
            out.push(error_frame(&format!(
                "no snapshot for epoch {}",
                fetch.epoch
            )));
            return;
        };
        let shards = self.assim.layout().shards();
        let mut sent = 0u32;
        let mut skipped = 0u32;
        for &(id, cached) in &fetch.wants {
            let i = id as usize;
            if i >= shards {
                out.push(error_frame(&format!("shard {id} out of range")));
                return;
            }
            if snap.manifest[i] == cached {
                skipped += 1;
                continue;
            }
            sent += 1;
            out.push(Frame {
                kind: FrameKind::Shard,
                shard_id: id,
                version: snap.manifest[i],
                payload: snap.blobs[i].clone(),
            });
        }
        self.metrics.fetches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .shards_sent
            .fetch_add(sent as u64, Ordering::Relaxed);
        self.metrics
            .cache_hits
            .fetch_add(skipped as u64, Ordering::Relaxed);
        out.push(FetchSummary { sent, skipped }.to_frame(fetch.epoch));
    }

    fn handle_push(&self, req: &Frame, out: &mut Vec<Frame>) {
        let shard_id = req.shard_id as usize;
        let layout = self.assim.layout();
        if shard_id >= layout.shards() {
            out.push(error_frame(&format!("shard {shard_id} out of range")));
            return;
        }
        let part = match decode_f32s(&req.payload) {
            Ok(p) => p,
            Err(e) => {
                out.push(error_frame(&format!("bad push blob: {e}")));
                return;
            }
        };
        if part.len() != layout.len(shard_id) {
            out.push(error_frame(&format!(
                "push length {} != shard {shard_id} length {}",
                part.len(),
                layout.len(shard_id)
            )));
            return;
        }
        let epoch = req.version as usize;
        let ack = self.assim.merge_shard(shard_id, &part, epoch);
        self.metrics.pushes.fetch_add(1, Ordering::Relaxed);
        out.push(ack.to_frame(req.shard_id));
    }

    /// The full wire path: decodes request bytes, handles each frame, and
    /// encodes the responses into `out_bytes`. Malformed request *bytes*
    /// (as opposed to well-formed frames with bad contents) are a
    /// transport-level error — a real socket would drop the connection.
    pub fn handle_bytes(&self, req_bytes: &[u8], out_bytes: &mut Vec<u8>) -> Result<(), WireError> {
        let mut reqs = Vec::new();
        decode_all(req_bytes, &mut reqs)?;
        let mut out = Vec::new();
        for req in &reqs {
            self.handle(req, &mut out);
        }
        for frame in &out {
            frame.encode_into(out_bytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_asgd::AlphaSchedule;
    use vc_kvstore::{Consistency, VersionedStore};

    fn service(n: usize, p: usize) -> PsService {
        let assim = Arc::new(ShardedAssimilator::new(
            Arc::new(VersionedStore::new()),
            n,
            p,
            Consistency::Eventual,
            AlphaSchedule::Const(0.5),
        ));
        let params: Vec<f32> = (0..n).map(|i| i as f32).collect();
        assim.seed_params(&params);
        let svc = PsService::new(assim);
        let (params, manifest) = svc.assimilator().read_params();
        svc.publish_snapshot(1, &params, &manifest);
        svc
    }

    fn fetch_all(svc: &PsService, epoch: u64, shards: usize) -> Vec<Frame> {
        let req = FetchReq {
            epoch,
            wants: (0..shards as u32).map(|i| (i, 0)).collect(),
        }
        .to_frame();
        let mut out = Vec::new();
        svc.handle(&req, &mut out);
        out
    }

    #[test]
    fn fetch_returns_every_shard_then_done() {
        let svc = service(10, 3);
        let out = fetch_all(&svc, 1, 3);
        assert_eq!(out.len(), 4);
        for (i, f) in out[..3].iter().enumerate() {
            assert_eq!(f.kind, FrameKind::Shard);
            assert_eq!(f.shard_id, i as u32);
            assert_eq!(f.version, 1);
        }
        let done = FetchSummary::from_frame(&out[3]).unwrap();
        assert_eq!(
            done,
            FetchSummary {
                sent: 3,
                skipped: 0
            }
        );
        let ops = svc.ops();
        assert_eq!(ops.fetches, 1);
        assert_eq!(ops.shards_sent, 3);
        assert!(ops.bytes_tx > ops.bytes_rx, "shards dominate the wire");
    }

    #[test]
    fn cached_shards_are_skipped() {
        let svc = service(10, 3);
        let req = FetchReq {
            epoch: 1,
            wants: vec![(0, 1), (1, 0), (2, 1)],
        }
        .to_frame();
        let mut out = Vec::new();
        svc.handle(&req, &mut out);
        assert_eq!(out.len(), 2, "only shard 1 plus the summary");
        assert_eq!(out[0].shard_id, 1);
        let done = FetchSummary::from_frame(&out[1]).unwrap();
        assert_eq!(
            done,
            FetchSummary {
                sent: 1,
                skipped: 2
            }
        );
        assert_eq!(svc.ops().cache_hits, 2);
    }

    #[test]
    fn unknown_epoch_is_an_error_frame() {
        let svc = service(10, 3);
        let out = fetch_all(&svc, 99, 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FrameKind::Error);
    }

    #[test]
    fn push_merges_and_acks() {
        let svc = service(8, 2);
        let layout_len = svc.assimilator().layout().len(0);
        let push = Frame {
            kind: FrameKind::Push,
            shard_id: 0,
            version: 1, // epoch
            payload: encode_f32s(&vec![100.0; layout_len]),
        };
        let mut out = Vec::new();
        svc.handle(&push, &mut out);
        assert_eq!(out.len(), 1);
        let ack = crate::wire::PushAck::from_frame(&out[0]).unwrap();
        assert_eq!(ack.new_version, 2);
        assert_eq!(ack.clobbered, 0);
        // alpha 0.5 over seed [0,1,..]: shard 0 values move halfway to 100.
        let (params, _) = svc.assimilator().read_params();
        assert!((params[0] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn bad_push_lengths_and_shards_are_error_frames() {
        let svc = service(8, 2);
        let mut out = Vec::new();
        svc.handle(
            &Frame {
                kind: FrameKind::Push,
                shard_id: 9,
                version: 1,
                payload: encode_f32s(&[1.0]),
            },
            &mut out,
        );
        svc.handle(
            &Frame {
                kind: FrameKind::Push,
                shard_id: 0,
                version: 1,
                payload: encode_f32s(&[1.0]),
            },
            &mut out,
        );
        svc.handle(
            &Frame {
                kind: FrameKind::Push,
                shard_id: 0,
                version: 1,
                payload: Bytes::copy_from_slice(b"garbage"),
            },
            &mut out,
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|f| f.kind == FrameKind::Error));
    }

    #[test]
    fn handle_bytes_is_the_same_protocol() {
        let svc = service(10, 3);
        let req = FetchReq {
            epoch: 1,
            wants: vec![(0, 0), (1, 0), (2, 0)],
        }
        .to_frame();
        let mut direct = Vec::new();
        svc.handle(&req, &mut direct);
        let mut wire_out = Vec::new();
        svc.handle_bytes(&req.encode(), &mut wire_out).unwrap();
        let mut decoded = Vec::new();
        decode_all(&wire_out, &mut decoded).unwrap();
        assert_eq!(decoded, direct, "transport must not change the frames");
    }

    #[test]
    fn snapshot_params_reassembles_and_retires() {
        let svc = service(10, 3);
        let full = svc.snapshot_params(1).unwrap();
        assert_eq!(full, (0..10).map(|i| i as f32).collect::<Vec<_>>());
        svc.retire_snapshots_before(2);
        assert!(svc.snapshot_params(1).is_none());
    }
}
