//! Length-prefixed binary frames for the parameter service.
//!
//! Every message between a worker and the parameter service is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     len       u32 LE — bytes after this field (17 + payload)
//! 4       1     kind      FrameKind discriminant
//! 5       4     shard_id  u32 LE
//! 9       8     version   u64 LE — shard version, epoch, or ack version
//! 17      4     crc32     u32 LE — IEEE CRC-32 of kind..version + payload
//! 21      len-17  payload
//! ```
//!
//! The decoder is hostile-input safe: it length-checks before every read,
//! rejects frames whose declared length exceeds [`MAX_PAYLOAD`] *before*
//! allocating anything (a forged 4 GiB length cannot OOM the server), and
//! verifies the checksum before the payload is interpreted. Shard payloads
//! reuse the `vc-tensor` `VCP1` parameter-blob codec, so a frame's payload
//! is exactly the value stored in the kvstore — no re-encoding on either
//! side of the wire.

use crate::codec::{Codec, DESC_LEN};
use bytes::{Buf, BufMut, Bytes};
use std::io::{Read, Write};

/// Hard ceiling on a frame payload (64 MiB — three times the paper's
/// 21.2 MB full parameter file, and shards are strictly smaller).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Bytes after the length prefix that belong to the header
/// (kind + shard_id + version + crc32).
pub const HEADER_LEN: usize = 17;

/// What a frame means. Discriminants are the on-wire `kind` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → service: request shards for an epoch snapshot. `version`
    /// carries the epoch; the payload lists `(shard_id, cached_version)`
    /// pairs so the service can skip shards the worker already holds.
    Fetch = 1,
    /// Service → worker: one shard's parameter blob. `version` is the
    /// shard's snapshot version.
    Shard = 2,
    /// Service → worker: fetch complete. `version` echoes the epoch; the
    /// payload counts shards sent and shards skipped (cache hits).
    FetchDone = 3,
    /// Worker → service: a trained client replica of one shard to merge.
    /// `version` carries the epoch driving the α schedule.
    Push = 4,
    /// Service → worker: push merged. `version` is the shard's new store
    /// version; the payload carries the clobbered-update count.
    PushAck = 5,
    /// Service → worker: request failed; payload is a UTF-8 message and
    /// `version` carries a structured [error code](err_code) (0 = generic).
    Error = 6,
    /// Service → worker: one shard's parameter update, quantized and
    /// delta-encoded against a snapshot the worker already holds.
    /// `version` is the shard's new snapshot version; the payload is
    /// `[base_version u64][codec descriptor][blob]`.
    ShardDelta = 7,
    /// Worker → service: a trained replica's update for one shard,
    /// quantized and delta-encoded against the epoch snapshot the worker
    /// fetched. `version` carries the epoch driving the α schedule; the
    /// payload is `[base_epoch u64][codec descriptor][blob]`.
    PushDelta = 8,
}

impl FrameKind {
    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => FrameKind::Fetch,
            2 => FrameKind::Shard,
            3 => FrameKind::FetchDone,
            4 => FrameKind::Push,
            5 => FrameKind::PushAck,
            6 => FrameKind::Error,
            7 => FrameKind::ShardDelta,
            8 => FrameKind::PushDelta,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Message type.
    pub kind: FrameKind,
    /// Shard the message concerns (0 for epoch-level messages).
    pub shard_id: u32,
    /// Kind-dependent: shard version, epoch, or ack version.
    pub version: u64,
    /// Kind-dependent body (shared, not copied, when cloned).
    pub payload: Bytes,
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// More bytes are needed; `need` is the total frame size once known.
    Incomplete {
        /// Total bytes the frame occupies (or the minimum to learn that).
        need: usize,
    },
    /// The declared length is impossibly small or exceeds [`MAX_PAYLOAD`].
    BadLength(u32),
    /// Checksum mismatch: the frame was corrupted in flight.
    BadCrc {
        /// Checksum carried by the frame.
        expect: u32,
        /// Checksum computed over the received bytes.
        got: u32,
    },
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The frame decoded but its payload does not fit its kind.
    BadPayload(&'static str),
    /// The frame names a codec id this build does not speak. The service
    /// answers with a structured `Error` frame instead of dropping the
    /// connection so the client can renegotiate down to `Raw`.
    UnsupportedCodec(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Incomplete { need } => write!(f, "incomplete frame: need {need} bytes"),
            WireError::BadLength(len) => write!(f, "bad frame length {len}"),
            WireError::BadCrc { expect, got } => {
                write!(
                    f,
                    "crc mismatch: frame says {expect:#010x}, got {got:#010x}"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadPayload(what) => write!(f, "bad payload: {what}"),
            WireError::UnsupportedCodec(id) => write!(f, "unsupported codec id {id}"),
        }
    }
}

impl std::error::Error for WireError {}

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), the Ethernet/zip
/// polynomial. Table-driven, streaming via [`Crc32`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

impl Frame {
    /// Total bytes this frame occupies on the wire.
    pub fn encoded_len(&self) -> usize {
        4 + HEADER_LEN + self.payload.len()
    }

    fn crc(&self) -> u32 {
        let mut header = [0u8; 13];
        header[0] = self.kind as u8;
        header[1..5].copy_from_slice(&self.shard_id.to_le_bytes());
        header[5..13].copy_from_slice(&self.version.to_le_bytes());
        let mut c = Crc32::new();
        c.update(&header);
        c.update(&self.payload);
        c.finish()
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(
            self.payload.len() <= MAX_PAYLOAD,
            "payload over MAX_PAYLOAD"
        );
        out.reserve(self.encoded_len());
        out.put_u32_le((HEADER_LEN + self.payload.len()) as u32);
        out.put_u8(self.kind as u8);
        out.put_u32_le(self.shard_id);
        out.put_u64_le(self.version);
        out.put_u32_le(self.crc());
        out.extend_from_slice(&self.payload);
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed. Never panics and never allocates more
    /// than [`MAX_PAYLOAD`] regardless of input.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < 4 {
            return Err(WireError::Incomplete { need: 4 });
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let body_len = len as usize;
        if body_len < HEADER_LEN || body_len - HEADER_LEN > MAX_PAYLOAD {
            return Err(WireError::BadLength(len));
        }
        let total = 4 + body_len;
        if buf.len() < total {
            return Err(WireError::Incomplete { need: total });
        }
        let mut body = &buf[4..total];
        let kind_byte = body.get_u8();
        let shard_id = body.get_u32_le();
        let version = body.get_u64_le();
        let expect = body.get_u32_le();
        let payload = body; // remaining bytes
        let mut c = Crc32::new();
        c.update(&buf[4..HEADER_LEN]); // kind + shard_id + version (13 bytes)
        c.update(payload);
        let got = c.finish();
        if got != expect {
            return Err(WireError::BadCrc { expect, got });
        }
        let kind = FrameKind::from_byte(kind_byte)?;
        Ok((
            Frame {
                kind,
                shard_id,
                version,
                payload: Bytes::copy_from_slice(payload),
            },
            total,
        ))
    }
}

/// Writes one frame to a stream, reusing `scratch` as the encode buffer.
/// Returns the bytes written.
pub fn write_frame(
    w: &mut impl Write,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> std::io::Result<usize> {
    scratch.clear();
    frame.encode_into(scratch);
    w.write_all(scratch)?;
    Ok(scratch.len())
}

/// A frame read from a stream failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The stream ended cleanly between frames.
    Eof,
    /// The stream errored.
    Io(std::io::Error),
    /// The bytes arrived but were not a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Eof => write!(f, "connection closed"),
            FrameReadError::Io(e) => write!(f, "io error: {e}"),
            FrameReadError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<WireError> for FrameReadError {
    fn from(e: WireError) -> Self {
        FrameReadError::Wire(e)
    }
}

/// Reads one frame from a blocking stream, reusing `scratch`. Validates
/// the declared length *before* allocating the body buffer.
pub fn read_frame(r: &mut impl Read, scratch: &mut Vec<u8>) -> Result<Frame, FrameReadError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameReadError::Eof),
            Ok(0) => return Err(FrameReadError::Wire(WireError::Incomplete { need: 4 })),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    let body_len = len as usize;
    if body_len < HEADER_LEN || body_len - HEADER_LEN > MAX_PAYLOAD {
        return Err(FrameReadError::Wire(WireError::BadLength(len)));
    }
    scratch.clear();
    scratch.extend_from_slice(&len_bytes);
    scratch.resize(4 + body_len, 0);
    r.read_exact(&mut scratch[4..]).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameReadError::Wire(WireError::Incomplete { need: 4 + body_len })
        } else {
            FrameReadError::Io(e)
        }
    })?;
    let (frame, consumed) = Frame::decode(scratch)?;
    debug_assert_eq!(consumed, scratch.len());
    Ok(frame)
}

/// Decodes every frame in `buf`; errors if any byte fails to parse.
pub fn decode_all(mut buf: &[u8], out: &mut Vec<Frame>) -> Result<(), WireError> {
    while !buf.is_empty() {
        let (frame, used) = Frame::decode(buf)?;
        out.push(frame);
        buf = &buf[used..];
    }
    Ok(())
}

/// Payload of a [`FrameKind::Fetch`] frame: which shards the worker wants
/// and what it already holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchReq {
    /// Epoch snapshot to fetch from.
    pub epoch: u64,
    /// `(shard_id, cached_version)` pairs; version 0 means "not cached".
    pub wants: Vec<(u32, u64)>,
    /// Codec the worker can decode shard deltas in. `Raw` encodes exactly
    /// the legacy payload (no descriptor trailer), so old and new peers
    /// interoperate bit-for-bit on the default path.
    pub codec: Codec,
}

impl FetchReq {
    /// Encodes as a frame. Non-`Raw` codecs append the 6-byte descriptor
    /// after the want list; `Raw` stays byte-identical to the pre-codec
    /// protocol.
    pub fn to_frame(&self) -> Frame {
        let mut payload = Vec::with_capacity(4 + self.wants.len() * 12 + DESC_LEN);
        payload.put_u32_le(self.wants.len() as u32);
        for &(id, ver) in &self.wants {
            payload.put_u32_le(id);
            payload.put_u64_le(ver);
        }
        if self.codec != Codec::Raw {
            self.codec.write_desc(&mut payload);
        }
        Frame {
            kind: FrameKind::Fetch,
            shard_id: 0,
            version: self.epoch,
            payload: Bytes::from(payload),
        }
    }

    /// Parses a [`FrameKind::Fetch`] frame's payload. The codec trailer is
    /// recognized by length: `count·12` bytes after the count is a legacy
    /// `Raw` request, `count·12 + 6` carries a descriptor, anything else
    /// is rejected. An unknown codec id surfaces as
    /// [`WireError::UnsupportedCodec`] so the service can answer with a
    /// structured error instead of dropping the connection.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        if frame.kind != FrameKind::Fetch {
            return Err(WireError::BadPayload("not a Fetch frame"));
        }
        let mut p: &[u8] = &frame.payload;
        if p.len() < 4 {
            return Err(WireError::BadPayload("fetch payload too short"));
        }
        let count = p.get_u32_le() as usize;
        let codec = if p.len() == count * 12 {
            Codec::Raw
        } else if p.len() == count * 12 + DESC_LEN {
            let desc = &p[count * 12..];
            Codec::read_desc(desc).map_err(WireError::UnsupportedCodec)?
        } else {
            return Err(WireError::BadPayload("fetch want-list length mismatch"));
        };
        let mut wants = Vec::with_capacity(count);
        for _ in 0..count {
            let id = p.get_u32_le();
            let ver = p.get_u64_le();
            wants.push((id, ver));
        }
        Ok(FetchReq {
            epoch: frame.version,
            wants,
            codec,
        })
    }
}

/// Payload of a [`FrameKind::ShardDelta`] or [`FrameKind::PushDelta`]
/// frame: which snapshot the update is relative to, how it is encoded,
/// and the quantized blob itself.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPayload {
    /// Snapshot the delta applies on top of: a shard version for
    /// `ShardDelta`, an epoch for `PushDelta`.
    pub base: u64,
    /// How the blob is encoded.
    pub codec: Codec,
    /// The quantized update bytes (codec-specific layout).
    pub blob: Bytes,
}

impl DeltaPayload {
    /// Bytes before the blob: base (8) + codec descriptor (6).
    pub const PREFIX_LEN: usize = 8 + DESC_LEN;

    /// Encodes as a frame of the given delta `kind`.
    pub fn to_frame(&self, kind: FrameKind, shard_id: u32, version: u64) -> Frame {
        debug_assert!(matches!(kind, FrameKind::ShardDelta | FrameKind::PushDelta));
        let mut payload = Vec::with_capacity(Self::PREFIX_LEN + self.blob.len());
        payload.put_u64_le(self.base);
        self.codec.write_desc(&mut payload);
        payload.extend_from_slice(&self.blob);
        Frame {
            kind,
            shard_id,
            version,
            payload: Bytes::from(payload),
        }
    }

    /// Parses a delta frame's payload. Unknown codec ids surface as
    /// [`WireError::UnsupportedCodec`]; the blob itself is validated by
    /// [`Codec::decode_update_into`] at apply time.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        if !matches!(frame.kind, FrameKind::ShardDelta | FrameKind::PushDelta) {
            return Err(WireError::BadPayload("not a delta frame"));
        }
        let p: &[u8] = &frame.payload;
        if p.len() < Self::PREFIX_LEN {
            return Err(WireError::BadPayload("delta payload too short"));
        }
        let base = u64::from_le_bytes(p[..8].try_into().expect("length checked"));
        let codec =
            Codec::read_desc(&p[8..Self::PREFIX_LEN]).map_err(WireError::UnsupportedCodec)?;
        Ok(DeltaPayload {
            base,
            codec,
            blob: Bytes::copy_from_slice(&frame.payload[Self::PREFIX_LEN..]),
        })
    }
}

/// Payload of a [`FrameKind::FetchDone`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchSummary {
    /// Shards whose blobs were sent.
    pub sent: u32,
    /// Shards skipped because the worker's cached version matched.
    pub skipped: u32,
}

impl FetchSummary {
    /// Encodes as a frame echoing `epoch`.
    pub fn to_frame(&self, epoch: u64) -> Frame {
        let mut payload = Vec::with_capacity(8);
        payload.put_u32_le(self.sent);
        payload.put_u32_le(self.skipped);
        Frame {
            kind: FrameKind::FetchDone,
            shard_id: 0,
            version: epoch,
            payload: Bytes::from(payload),
        }
    }

    /// Parses a [`FrameKind::FetchDone`] frame's payload.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        if frame.kind != FrameKind::FetchDone {
            return Err(WireError::BadPayload("not a FetchDone frame"));
        }
        let mut p: &[u8] = &frame.payload;
        if p.len() != 8 {
            return Err(WireError::BadPayload("fetch summary must be 8 bytes"));
        }
        Ok(FetchSummary {
            sent: p.get_u32_le(),
            skipped: p.get_u32_le(),
        })
    }
}

/// Payload of a [`FrameKind::PushAck`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushAck {
    /// The shard's version after the merge.
    pub new_version: u64,
    /// Concurrent updates this merge clobbered (eventual mode).
    pub clobbered: u64,
}

impl PushAck {
    /// Encodes as a frame for `shard_id`.
    pub fn to_frame(&self, shard_id: u32) -> Frame {
        let mut payload = Vec::with_capacity(8);
        payload.put_u64_le(self.clobbered);
        Frame {
            kind: FrameKind::PushAck,
            shard_id,
            version: self.new_version,
            payload: Bytes::from(payload),
        }
    }

    /// Parses a [`FrameKind::PushAck`] frame's payload.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        if frame.kind != FrameKind::PushAck {
            return Err(WireError::BadPayload("not a PushAck frame"));
        }
        let mut p: &[u8] = &frame.payload;
        if p.len() != 8 {
            return Err(WireError::BadPayload("push ack must be 8 bytes"));
        }
        Ok(PushAck {
            new_version: frame.version,
            clobbered: p.get_u64_le(),
        })
    }
}

/// Structured error codes carried in an `Error` frame's `version` field.
/// Code 0 is the generic failure every pre-codec peer already emits; the
/// others let a client react without parsing the message text.
pub mod err_code {
    /// Unclassified failure; payload text is the only detail.
    pub const GENERIC: u64 = 0;
    /// The request named a codec the service does not speak. The client
    /// should fall back to `Raw` and retry.
    pub const UNSUPPORTED_CODEC: u64 = 1;
    /// A delta referenced a base snapshot the service no longer holds.
    /// The client should resend at full precision.
    pub const UNKNOWN_BASE: u64 = 2;
}

/// Builds a generic error frame with a UTF-8 message.
pub fn error_frame(msg: &str) -> Frame {
    error_frame_code(err_code::GENERIC, msg)
}

/// Builds an error frame carrying a structured [`err_code`].
pub fn error_frame_code(code: u64, msg: &str) -> Frame {
    Frame {
        kind: FrameKind::Error,
        shard_id: 0,
        version: code,
        payload: Bytes::copy_from_slice(msg.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            kind: FrameKind::Shard,
            shard_id: 7,
            version: 42,
            payload: Bytes::copy_from_slice(b"hello shard"),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_streams_like_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn frame_roundtrip() {
        let f = sample();
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn decode_reports_incomplete_not_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(WireError::Incomplete { need }) => assert!(need > cut),
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_fail_crc() {
        let bytes = sample().encode();
        // Flip each byte after the length prefix: header flips break the
        // CRC (or the CRC field itself), payload flips break the CRC.
        for i in 4..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                matches!(Frame::decode(&corrupt), Err(WireError::BadCrc { .. })),
                "flip at {i} must be caught"
            );
        }
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // A forged length of 4 GiB must be rejected up front.
        let mut bytes = sample().encode();
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadLength(u32::MAX))
        ));
        // A length smaller than the header is equally impossible.
        bytes[0..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadLength(3))
        ));
    }

    #[test]
    fn unknown_kind_rejected_after_crc() {
        let mut f = sample();
        f.payload = Bytes::new();
        let mut bytes = f.encode();
        bytes[4] = 0xEE; // kind byte
                         // Fix up the CRC so only the kind is wrong.
        let mut c = Crc32::new();
        c.update(&bytes[4..17]);
        let crc = c.finish();
        bytes[17..21].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::UnknownKind(0xEE))
        ));
    }

    #[test]
    fn fetch_req_roundtrip() {
        let req = FetchReq {
            epoch: 9,
            wants: vec![(0, 0), (3, 17), (15, 2)],
            codec: Codec::Raw,
        };
        let frame = req.to_frame();
        let bytes = frame.encode();
        let (back, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(FetchReq::from_frame(&back).unwrap(), req);
    }

    #[test]
    fn fetch_req_codec_trailer_roundtrips() {
        let req = FetchReq {
            epoch: 4,
            wants: vec![(0, 7), (2, 0)],
            codec: Codec::Int8 {
                error_feedback: true,
            },
        };
        let frame = req.to_frame();
        assert_eq!(
            frame.payload.len(),
            4 + 2 * 12 + DESC_LEN,
            "non-Raw requests carry the descriptor trailer"
        );
        assert_eq!(FetchReq::from_frame(&frame).unwrap(), req);
        // Raw stays byte-identical to the legacy layout (no trailer).
        let raw = FetchReq {
            codec: Codec::Raw,
            ..req.clone()
        };
        assert_eq!(raw.to_frame().payload.len(), 4 + 2 * 12);
    }

    #[test]
    fn fetch_req_unknown_codec_id_is_structured() {
        let mut frame = FetchReq {
            epoch: 4,
            wants: vec![(0, 7)],
            codec: Codec::Fp16,
        }
        .to_frame();
        let mut bytes = frame.payload.to_vec();
        bytes[4 + 12] = 200; // forge an unassigned codec id
        frame.payload = Bytes::from(bytes);
        assert_eq!(
            FetchReq::from_frame(&frame),
            Err(WireError::UnsupportedCodec(200))
        );
    }

    #[test]
    fn fetch_req_rejects_length_mismatch() {
        let mut frame = FetchReq {
            epoch: 1,
            wants: vec![(0, 0)],
            codec: Codec::Raw,
        }
        .to_frame();
        let mut bad = frame.payload.to_vec();
        bad.truncate(bad.len() - 1);
        frame.payload = Bytes::from(bad);
        assert!(FetchReq::from_frame(&frame).is_err());
    }

    #[test]
    fn delta_payload_roundtrips_both_kinds() {
        let d = DeltaPayload {
            base: 31,
            codec: Codec::TopK {
                k: 5,
                error_feedback: true,
            },
            blob: Bytes::copy_from_slice(&[1, 2, 3, 4]),
        };
        for kind in [FrameKind::ShardDelta, FrameKind::PushDelta] {
            let f = d.to_frame(kind, 3, 99);
            assert_eq!(f.version, 99);
            assert_eq!(f.shard_id, 3);
            let bytes = f.encode();
            let (back, _) = Frame::decode(&bytes).unwrap();
            assert_eq!(DeltaPayload::from_frame(&back).unwrap(), d);
        }
        // Truncated prefix and unknown id both error gracefully.
        let mut f = d.to_frame(FrameKind::ShardDelta, 0, 1);
        f.payload = Bytes::copy_from_slice(&f.payload[..10]);
        assert!(DeltaPayload::from_frame(&f).is_err());
        let mut f = d.to_frame(FrameKind::ShardDelta, 0, 1);
        let mut bytes = f.payload.to_vec();
        bytes[8] = 77;
        f.payload = Bytes::from(bytes);
        assert_eq!(
            DeltaPayload::from_frame(&f),
            Err(WireError::UnsupportedCodec(77))
        );
    }

    #[test]
    fn error_frame_codes() {
        let f = error_frame("plain");
        assert_eq!(f.version, err_code::GENERIC);
        let f = error_frame_code(err_code::UNSUPPORTED_CODEC, "no such codec");
        assert_eq!(f.version, err_code::UNSUPPORTED_CODEC);
        assert_eq!(&f.payload[..], b"no such codec");
    }

    #[test]
    fn summary_and_ack_roundtrip() {
        let s = FetchSummary {
            sent: 3,
            skipped: 13,
        };
        assert_eq!(FetchSummary::from_frame(&s.to_frame(5)).unwrap(), s);
        let a = PushAck {
            new_version: 88,
            clobbered: 2,
        };
        let f = a.to_frame(6);
        assert_eq!(f.shard_id, 6);
        assert_eq!(PushAck::from_frame(&f).unwrap(), a);
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let frames = vec![
            sample(),
            FetchReq {
                epoch: 2,
                wants: vec![(1, 0)],
                codec: Codec::Raw,
            }
            .to_frame(),
            error_frame("nope"),
        ];
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f, &mut scratch).unwrap();
        }
        let mut r: &[u8] = &wire;
        for f in &frames {
            let got = read_frame(&mut r, &mut scratch).unwrap();
            assert_eq!(&got, f);
        }
        assert!(matches!(
            read_frame(&mut r, &mut scratch),
            Err(FrameReadError::Eof)
        ));
    }

    #[test]
    fn stream_read_rejects_hostile_length() {
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 64]);
        let mut r: &[u8] = &wire;
        let mut scratch = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut scratch),
            Err(FrameReadError::Wire(WireError::BadLength(_)))
        ));
    }

    #[test]
    fn decode_all_parses_back_to_back_frames() {
        let mut wire = sample().encode();
        wire.extend_from_slice(&error_frame("x").encode());
        let mut out = Vec::new();
        decode_all(&wire, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], sample());
        assert_eq!(out[1].kind, FrameKind::Error);
    }
}
