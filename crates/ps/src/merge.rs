//! Per-shard VC-ASGD merging over the versioned store.
//!
//! The Eq. (1) blend `W_s ← α·W_s + (1−α)·W_c` is elementwise, so
//! splitting the flat parameter vector into contiguous shards — each its
//! own store key with its own version counter — changes *contention and
//! transfer granularity*, never the math: merging shard by shard in order
//! is bitwise-identical to merging the whole vector at once. With one
//! shard this type performs exactly the same store operations on exactly
//! the same key as the unsharded `vc_asgd::VcAsgdAssimilator`, which is
//! what keeps single-shard runs byte-identical to the historical
//! trajectories.

use crate::wire::PushAck;
use std::sync::Arc;
use vc_asgd::alpha::{blend_eq1, AlphaSchedule};
use vc_asgd::assimilator::PARAMS_KEY;
use vc_kvstore::{Consistency, ShardLayout, VersionedStore};
use vc_telemetry::{Histogram, Telemetry};
use vc_tensor::codec::{decode_f32s, decode_f32s_into, encode_f32s};

/// Histogram: wall (or virtual) seconds per single-shard merge.
pub const PS_MERGE_S: &str = "ps_merge_s";
/// Histogram: version spread `max-min` across shard versions at each full
/// parameter read — how far the shards have drifted apart.
pub const PS_SHARD_SKEW_VERSIONS: &str = "ps_shard_skew_versions";

/// The key a shard's blob lives under. One shard collapses to the
/// unsharded key so existing histories and checkpoints line up.
pub fn shard_key(shards: usize, i: usize) -> String {
    if shards == 1 {
        PARAMS_KEY.to_string()
    } else {
        format!("{PARAMS_KEY}/s{i}")
    }
}

/// An eventual-mode snapshot taken at assimilation start: each shard's
/// stale copy and the version it was read at.
pub struct ShardSnapshot {
    parts: Vec<Vec<f32>>,
    versions: Vec<u64>,
}

impl ShardSnapshot {
    /// Versions the shards were read at.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }
}

/// A parameter-server assimilation pipeline over `P` shards.
pub struct ShardedAssimilator {
    store: Arc<VersionedStore>,
    layout: ShardLayout,
    keys: Vec<String>,
    mode: Consistency,
    schedule: AlphaSchedule,
    instruments: Option<Instruments>,
}

struct Instruments {
    tel: Telemetry,
    merge_s: Arc<Histogram>,
    skew: Arc<Histogram>,
}

impl ShardedAssimilator {
    /// Builds the pipeline: `ps_shards` near-equal contiguous shards over a
    /// `param_count`-element vector, stored in `store`.
    pub fn new(
        store: Arc<VersionedStore>,
        param_count: usize,
        ps_shards: usize,
        mode: Consistency,
        schedule: AlphaSchedule,
    ) -> Self {
        let layout = ShardLayout::new(param_count, ps_shards);
        let keys = (0..layout.shards())
            .map(|i| shard_key(layout.shards(), i))
            .collect();
        ShardedAssimilator {
            store,
            layout,
            keys,
            mode,
            schedule,
            instruments: None,
        }
    }

    /// Attaches per-shard merge telemetry.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        let reg = tel.registry();
        self.instruments = Some(Instruments {
            tel: tel.clone(),
            merge_s: reg.histogram(PS_MERGE_S),
            skew: reg.histogram_with(PS_SHARD_SKEW_VERSIONS, Histogram::version_bounds),
        });
        self
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The store key of shard `i`.
    pub fn key(&self, i: usize) -> &str {
        &self.keys[i]
    }

    /// The consistency mode in use.
    pub fn mode(&self) -> Consistency {
        self.mode
    }

    /// The configured α schedule.
    pub fn schedule(&self) -> AlphaSchedule {
        self.schedule
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }

    /// Seeds every shard from the initial parameter vector (version 1).
    pub fn seed_params(&self, params: &[f32]) {
        assert_eq!(params.len(), self.layout.param_count(), "seed length");
        for (i, range) in self.layout.iter() {
            self.store.put(&self.keys[i], encode_f32s(&params[range]));
        }
    }

    /// Current version of every shard (no read is recorded).
    pub fn versions(&self) -> Vec<u64> {
        self.keys.iter().map(|k| self.store.version(k)).collect()
    }

    /// Reads the full parameter vector and the per-shard version manifest.
    pub fn read_params(&self) -> (Vec<f32>, Vec<u64>) {
        let mut params = Vec::new();
        let mut manifest = Vec::new();
        self.read_params_into(&mut params, &mut manifest);
        (params, manifest)
    }

    /// [`Self::read_params`] into caller-owned buffers: with warm buffers
    /// the hot fetch path allocates nothing (the store hands back shared
    /// blob views, the decode reuses `params`).
    pub fn read_params_into(&self, params: &mut Vec<f32>, manifest: &mut Vec<u64>) {
        params.clear();
        params.reserve(self.layout.param_count());
        manifest.clear();
        let mut scratch = Vec::new();
        for (i, range) in self.layout.iter() {
            let (blob, version) = self.store.get(&self.keys[i]);
            decode_f32s_into(&blob, &mut scratch).expect("store holds a valid shard blob");
            assert_eq!(scratch.len(), range.len(), "shard {i} length drifted");
            params.extend_from_slice(&scratch);
            manifest.push(version);
        }
        if let Some(ins) = &self.instruments {
            let min = manifest.iter().copied().min().unwrap_or(0);
            let max = manifest.iter().copied().max().unwrap_or(0);
            ins.skew.observe((max - min) as f64);
        }
    }

    /// Eventual-mode assimilation start: snapshots every shard (the stale
    /// read whose age decides what gets clobbered at commit).
    pub fn begin_eventual(&self) -> ShardSnapshot {
        let mut parts = Vec::with_capacity(self.layout.shards());
        let mut versions = Vec::with_capacity(self.layout.shards());
        for i in 0..self.layout.shards() {
            let (blob, version) = self.store.get(&self.keys[i]);
            parts.push(decode_f32s(&blob).expect("store holds a valid shard blob"));
            versions.push(version);
        }
        ShardSnapshot { parts, versions }
    }

    /// Eventual-mode assimilation end: shard by shard, blends the client
    /// copy into the snapshot and writes it back last-write-wins. Returns
    /// the updated full vector and the total clobbered-update count.
    pub fn commit_eventual(
        &self,
        mut snapshot: ShardSnapshot,
        client: &[f32],
        epoch: usize,
    ) -> (Vec<f32>, u64) {
        assert_eq!(client.len(), self.layout.param_count(), "client length");
        let alpha = self.schedule.alpha(epoch);
        let mut clobbered = 0;
        let mut full = Vec::with_capacity(self.layout.param_count());
        for (i, range) in self.layout.iter() {
            let t0 = self.instruments.as_ref().map(|ins| ins.tel.now_s());
            let part = &mut snapshot.parts[i];
            blend_eq1(part, &client[range], alpha);
            let out =
                self.store
                    .put_versioned(&self.keys[i], snapshot.versions[i], encode_f32s(part));
            clobbered += out.clobbered;
            full.extend_from_slice(part);
            if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
                ins.merge_s.observe(ins.tel.now_s() - t0);
            }
        }
        (full, clobbered)
    }

    /// Strong-mode assimilation: one serialized read-blend-write
    /// transaction *per shard*, in shard order. Under concurrency this
    /// pipelines — while one merger transacts shard `i+1`, the next can
    /// already be in shard `i` — which is where sharding buys its latency.
    /// Returns the post-update full vector.
    pub fn assimilate_strong(&self, client: &[f32], epoch: usize) -> Vec<f32> {
        assert_eq!(client.len(), self.layout.param_count(), "client length");
        let alpha = self.schedule.alpha(epoch);
        let mut full = Vec::with_capacity(self.layout.param_count());
        for (i, range) in self.layout.iter() {
            let t0 = self.instruments.as_ref().map(|ins| ins.tel.now_s());
            let client_part = &client[range];
            let (_, updated) = self.store.transact(&self.keys[i], |blob, _v| {
                let mut part = decode_f32s(blob).expect("store holds a valid shard blob");
                blend_eq1(&mut part, client_part, alpha);
                (encode_f32s(&part), part)
            });
            full.extend_from_slice(&updated);
            if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
                ins.merge_s.observe(ins.tel.now_s() - t0);
            }
        }
        full
    }

    /// Merges a single client shard, independent of the others — the live
    /// path behind a wire [`crate::wire::FrameKind::Push`]. Uses the
    /// configured consistency mode for just that shard.
    pub fn merge_shard(&self, shard_id: usize, client_part: &[f32], epoch: usize) -> PushAck {
        assert_eq!(client_part.len(), self.layout.len(shard_id), "shard length");
        let alpha = self.schedule.alpha(epoch);
        let t0 = self.instruments.as_ref().map(|ins| ins.tel.now_s());
        let ack = match self.mode {
            Consistency::Strong => {
                let (new_version, _) = self.store.transact(&self.keys[shard_id], |blob, _v| {
                    let mut part = decode_f32s(blob).expect("store holds a valid shard blob");
                    blend_eq1(&mut part, client_part, alpha);
                    (encode_f32s(&part), ())
                });
                PushAck {
                    new_version,
                    clobbered: 0,
                }
            }
            Consistency::Eventual => {
                let (blob, read_version) = self.store.get(&self.keys[shard_id]);
                let mut part = decode_f32s(&blob).expect("store holds a valid shard blob");
                blend_eq1(&mut part, client_part, alpha);
                let out = self.store.put_versioned(
                    &self.keys[shard_id],
                    read_version,
                    encode_f32s(&part),
                );
                PushAck {
                    new_version: out.new_version,
                    clobbered: out.clobbered,
                }
            }
        };
        if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
            ins.merge_s.observe(ins.tel.now_s() - t0);
        }
        ack
    }

    /// Lost updates recorded so far by the shared store.
    pub fn lost_updates(&self) -> u64 {
        self.store.metrics().snapshot().lost_updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_asgd::VcAsgdAssimilator;

    fn vec_of(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    fn sharded(n: usize, p: usize, mode: Consistency) -> ShardedAssimilator {
        ShardedAssimilator::new(
            Arc::new(VersionedStore::new()),
            n,
            p,
            mode,
            AlphaSchedule::Const(0.7),
        )
    }

    #[test]
    fn one_shard_uses_the_legacy_key_and_op_sequence() {
        let store = VersionedStore::shared_recording();
        let a = ShardedAssimilator::new(
            store.clone(),
            4,
            1,
            Consistency::Eventual,
            AlphaSchedule::Const(0.5),
        );
        assert_eq!(a.key(0), PARAMS_KEY);
        a.seed_params(&[0.0; 4]);
        let snap = a.begin_eventual();
        a.commit_eventual(snap, &[1.0; 4], 1);
        let history = store.take_history();
        // Exactly Put, Get, PutVersioned on the one legacy key — the same
        // ops the unsharded assimilator performs.
        assert_eq!(history.len(), 3);
        assert!(history.iter().all(|e| e.key == PARAMS_KEY));
    }

    #[test]
    fn sharded_strong_matches_unsharded_bitwise() {
        let n = 103;
        let w0 = vec_of(n, |i| (i as f32).sin());
        let clients: Vec<Vec<f32>> = (0..4)
            .map(|c| vec_of(n, |i| ((i + c * 31) as f32).cos()))
            .collect();
        let reference = VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            Consistency::Strong,
            AlphaSchedule::Const(0.7),
        );
        reference.seed_params(&w0);
        let mut want = Vec::new();
        for c in &clients {
            want = reference.assimilate_strong(c, 1);
        }
        for p in [1, 4, 16] {
            let a = sharded(n, p, Consistency::Strong);
            a.seed_params(&w0);
            let mut got = Vec::new();
            for c in &clients {
                got = a.assimilate_strong(c, 1);
            }
            let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "{p} shards must be bitwise identical");
        }
    }

    #[test]
    fn sharded_eventual_matches_unsharded_bitwise() {
        let n = 64;
        let w0 = vec_of(n, |i| i as f32 * 0.1);
        let c1 = vec_of(n, |i| -(i as f32));
        let c2 = vec_of(n, |i| (i as f32) * 2.0);
        let reference = VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            Consistency::Eventual,
            AlphaSchedule::Const(0.7),
        );
        reference.seed_params(&w0);
        // Two overlapping assimilations: both read the seed.
        let (s1, v1) = reference.begin_eventual();
        let (s2, v2) = reference.begin_eventual();
        reference.commit_eventual(s1, v1, &c1, 1);
        let (want, want_clobbered) = reference.commit_eventual(s2, v2, &c2, 1);
        assert_eq!(want_clobbered, 1);

        let a = sharded(n, 4, Consistency::Eventual);
        a.seed_params(&w0);
        let s1 = a.begin_eventual();
        let s2 = a.begin_eventual();
        a.commit_eventual(s1, &c1, 1);
        let (got, got_clobbered) = a.commit_eventual(s2, &c2, 1);
        // Each of the 4 shards clobbers one concurrent update.
        assert_eq!(got_clobbered, 4);
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits);
    }

    #[test]
    fn read_params_reassembles_and_reports_manifest() {
        let n = 10;
        let a = sharded(n, 3, Consistency::Strong);
        let w0 = vec_of(n, |i| i as f32);
        a.seed_params(&w0);
        let (params, manifest) = a.read_params();
        assert_eq!(params, w0);
        assert_eq!(manifest, vec![1, 1, 1]);
        // Touch only shard 1: its version moves, the others stay.
        let part = vec![9.0; a.layout().len(1)];
        a.merge_shard(1, &part, 1);
        assert_eq!(a.versions(), vec![1, 2, 1]);
    }

    #[test]
    fn merge_shard_updates_only_its_range() {
        let n = 9;
        let a = sharded(n, 3, Consistency::Eventual);
        a.seed_params(&vec![0.0; n]);
        let range = a.layout().range(2);
        let part = vec![10.0; range.len()];
        let ack = a.merge_shard(2, &part, 1);
        assert_eq!(ack.clobbered, 0);
        let (params, _) = a.read_params();
        for (i, v) in params.iter().enumerate() {
            if range.contains(&i) {
                assert!((v - 3.0).abs() < 1e-6, "alpha 0.7: 0.7*0 + 0.3*10");
            } else {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn telemetry_counts_per_shard_merges() {
        let tel = Telemetry::silent();
        let a = ShardedAssimilator::new(
            Arc::new(VersionedStore::new()),
            16,
            4,
            Consistency::Strong,
            AlphaSchedule::Const(0.5),
        )
        .with_telemetry(&tel);
        a.seed_params(&[0.0; 16]);
        a.assimilate_strong(&[1.0; 16], 1);
        a.read_params();
        let snap = tel.registry().snapshot();
        assert_eq!(snap.histogram(PS_MERGE_S).unwrap().count, 4);
        assert_eq!(snap.histogram(PS_SHARD_SKEW_VERSIONS).unwrap().count, 1);
    }
}
