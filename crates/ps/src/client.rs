//! Worker-side access to the parameter service.
//!
//! [`ShardCache`] is the sticky per-worker cache: it remembers which shard
//! versions it holds and asks the service only for shards whose manifest
//! version moved. When nothing moved, [`ShardCache::sync`] returns the
//! assembled vector without touching the transport — and without a single
//! heap allocation (`tests/fetch_alloc.rs` pins that down).
//!
//! Transports implement [`PsClient`]. [`MemClient`] runs requests through
//! the full wire codec against an in-process [`PsService`] — the frames are
//! byte-identical to what a socket would carry, so deterministic sweeps
//! exercise the real protocol. [`DelayedMemClient`] additionally reorders
//! response frames through a [`DelayQueue`], proving shard application is
//! order-independent.

use crate::codec::{encode_delta, Codec};
use crate::queue::DelayQueue;
use crate::service::PsService;
use crate::wire::{
    decode_all, err_code, DeltaPayload, FetchReq, FetchSummary, Frame, FrameKind, PushAck,
    WireError,
};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vc_kvstore::ShardLayout;
use vc_tensor::codec::{decode_f32s_into, encode_f32s};

/// Why a parameter-service request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PsError {
    /// Bytes failed to parse as frames.
    Wire(WireError),
    /// The transport failed (socket error, service gone).
    Transport(String),
    /// The service answered with an error frame.
    Server(String),
    /// The service does not speak the requested codec (structured error
    /// code [`err_code::UNSUPPORTED_CODEC`]); callers fall back to `Raw`.
    UnsupportedCodec(String),
    /// The service no longer holds the delta's base snapshot (structured
    /// error code [`err_code::UNKNOWN_BASE`]); callers resend in full.
    UnknownBase(String),
    /// The response did not cover everything the request asked for.
    ShortResponse(&'static str),
}

impl std::fmt::Display for PsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsError::Wire(e) => write!(f, "wire: {e}"),
            PsError::Transport(e) => write!(f, "transport: {e}"),
            PsError::Server(e) => write!(f, "server: {e}"),
            PsError::UnsupportedCodec(e) => write!(f, "unsupported codec: {e}"),
            PsError::UnknownBase(e) => write!(f, "unknown delta base: {e}"),
            PsError::ShortResponse(what) => write!(f, "short response: {what}"),
        }
    }
}

/// Maps an `Error` frame to the matching [`PsError`] via its structured
/// code (carried in the frame's `version` field).
fn server_error(f: &Frame) -> PsError {
    let msg = String::from_utf8_lossy(&f.payload).into_owned();
    match f.version {
        err_code::UNSUPPORTED_CODEC => PsError::UnsupportedCodec(msg),
        err_code::UNKNOWN_BASE => PsError::UnknownBase(msg),
        _ => PsError::Server(msg),
    }
}

impl std::error::Error for PsError {}

impl From<WireError> for PsError {
    fn from(e: WireError) -> Self {
        PsError::Wire(e)
    }
}

/// A transport to the parameter service.
pub trait PsClient: Send {
    /// Fetches the listed `(shard_id, cached_version)` pairs from the
    /// `epoch` snapshot, advertising which `codec` the caller can decode
    /// deltas in. Shard and shard-delta frames are appended to `out`; the
    /// summary is returned.
    fn fetch(
        &mut self,
        epoch: u64,
        wants: &[(u32, u64)],
        codec: Codec,
        out: &mut Vec<Frame>,
    ) -> Result<FetchSummary, PsError>;

    /// Pushes one trained client shard for merging, at full precision.
    fn push(&mut self, shard_id: u32, epoch: u64, values: &[f32]) -> Result<PushAck, PsError>;

    /// Pushes one shard's update as a quantized delta blob against the
    /// `base_epoch` snapshot the caller fetched.
    fn push_delta(
        &mut self,
        shard_id: u32,
        epoch: u64,
        base_epoch: u64,
        codec: Codec,
        blob: &[u8],
    ) -> Result<PushAck, PsError>;
}

/// Scans a decoded response for the frames a fetch expects.
pub(crate) fn collect_fetch_response(
    frames: Vec<Frame>,
    out: &mut Vec<Frame>,
) -> Result<FetchSummary, PsError> {
    let mut summary = None;
    for f in frames {
        match f.kind {
            FrameKind::Shard | FrameKind::ShardDelta => out.push(f),
            FrameKind::FetchDone => summary = Some(FetchSummary::from_frame(&f)?),
            FrameKind::Error => return Err(server_error(&f)),
            _ => return Err(PsError::ShortResponse("unexpected frame in fetch response")),
        }
    }
    summary.ok_or(PsError::ShortResponse("missing FetchDone"))
}

/// Scans a decoded response for a push acknowledgement.
pub(crate) fn collect_push_response(frames: Vec<Frame>) -> Result<PushAck, PsError> {
    for f in frames {
        match f.kind {
            FrameKind::PushAck => return Ok(PushAck::from_frame(&f)?),
            FrameKind::Error => return Err(server_error(&f)),
            _ => {}
        }
    }
    Err(PsError::ShortResponse("missing PushAck"))
}

/// Builds the [`FrameKind::PushDelta`] request frame shared by every
/// transport.
pub(crate) fn push_delta_frame(
    shard_id: u32,
    epoch: u64,
    base_epoch: u64,
    codec: Codec,
    blob: &[u8],
) -> Frame {
    DeltaPayload {
        base: base_epoch,
        codec,
        blob: Bytes::copy_from_slice(blob),
    }
    .to_frame(FrameKind::PushDelta, shard_id, epoch)
}

/// In-process transport: requests round-trip through the byte-level wire
/// codec against a shared [`PsService`]. Synchronous and deterministic.
pub struct MemClient {
    service: Arc<PsService>,
    req_bytes: Vec<u8>,
    resp_bytes: Vec<u8>,
}

impl MemClient {
    /// A client of `service`.
    pub fn new(service: Arc<PsService>) -> Self {
        MemClient {
            service,
            req_bytes: Vec::new(),
            resp_bytes: Vec::new(),
        }
    }

    fn roundtrip(&mut self, req: &Frame) -> Result<Vec<Frame>, PsError> {
        self.req_bytes.clear();
        req.encode_into(&mut self.req_bytes);
        self.resp_bytes.clear();
        self.service
            .handle_bytes(&self.req_bytes, &mut self.resp_bytes)?;
        let mut frames = Vec::new();
        decode_all(&self.resp_bytes, &mut frames)?;
        Ok(frames)
    }
}

impl PsClient for MemClient {
    fn fetch(
        &mut self,
        epoch: u64,
        wants: &[(u32, u64)],
        codec: Codec,
        out: &mut Vec<Frame>,
    ) -> Result<FetchSummary, PsError> {
        let req = FetchReq {
            epoch,
            wants: wants.to_vec(),
            codec,
        }
        .to_frame();
        let frames = self.roundtrip(&req)?;
        collect_fetch_response(frames, out)
    }

    fn push(&mut self, shard_id: u32, epoch: u64, values: &[f32]) -> Result<PushAck, PsError> {
        let req = Frame {
            kind: FrameKind::Push,
            shard_id,
            version: epoch,
            payload: encode_f32s(values),
        };
        let frames = self.roundtrip(&req)?;
        collect_push_response(frames)
    }

    fn push_delta(
        &mut self,
        shard_id: u32,
        epoch: u64,
        base_epoch: u64,
        codec: Codec,
        blob: &[u8],
    ) -> Result<PushAck, PsError> {
        let req = push_delta_frame(shard_id, epoch, base_epoch, codec, blob);
        let frames = self.roundtrip(&req)?;
        collect_push_response(frames)
    }
}

/// [`MemClient`] with a reordering stage: response frames are stamped with
/// deterministic pseudo-random delivery ticks and released through a
/// [`DelayQueue`], so shard frames arrive out of order — the single-thread
/// stand-in for a congested socket.
pub struct DelayedMemClient {
    inner: MemClient,
    rng: StdRng,
}

impl DelayedMemClient {
    /// A reordering client with its own deterministic seed.
    pub fn new(service: Arc<PsService>, seed: u64) -> Self {
        DelayedMemClient {
            inner: MemClient::new(service),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn reorder(&mut self, frames: Vec<Frame>) -> Vec<Frame> {
        let mut queue: DelayQueue<u64, Frame> = DelayQueue::new();
        let horizon = (frames.len() as u64).max(1) * 4;
        for f in frames {
            let tick = self.rng.gen_range(0..horizon);
            queue.push(tick, f);
        }
        let mut out = Vec::with_capacity(queue.len());
        while let Some(f) = queue.pop_due(horizon) {
            out.push(f);
        }
        out
    }
}

impl PsClient for DelayedMemClient {
    fn fetch(
        &mut self,
        epoch: u64,
        wants: &[(u32, u64)],
        codec: Codec,
        out: &mut Vec<Frame>,
    ) -> Result<FetchSummary, PsError> {
        let req = FetchReq {
            epoch,
            wants: wants.to_vec(),
            codec,
        }
        .to_frame();
        let frames = self.inner.roundtrip(&req)?;
        let frames = self.reorder(frames);
        collect_fetch_response(frames, out)
    }

    fn push(&mut self, shard_id: u32, epoch: u64, values: &[f32]) -> Result<PushAck, PsError> {
        self.inner.push(shard_id, epoch, values)
    }

    fn push_delta(
        &mut self,
        shard_id: u32,
        epoch: u64,
        base_epoch: u64,
        codec: Codec,
        blob: &[u8],
    ) -> Result<PushAck, PsError> {
        self.inner
            .push_delta(shard_id, epoch, base_epoch, codec, blob)
    }
}

/// A worker's sticky shard cache: versions held, assembled parameters, and
/// reused buffers for the refresh path. With a lossy codec attached the
/// cache also negotiates delta transfer — fetches apply quantized deltas
/// on top of the tracked state, pushes ship quantized update deltas with
/// per-shard error-feedback residuals — and falls back to `Raw`
/// permanently if the service does not speak the codec.
pub struct ShardCache {
    layout: ShardLayout,
    versions: Vec<u64>,
    full: Vec<f32>,
    wants: Vec<(u32, u64)>,
    frames: Vec<Frame>,
    scratch: Vec<f32>,
    codec: Codec,
    /// Epoch of the last successful sync — the base pushes delta against.
    last_epoch: u64,
    /// Per-shard error-feedback residuals for the push path (allocated
    /// lazily on the first lossy push).
    push_residuals: Vec<Vec<f32>>,
    x_scratch: Vec<f32>,
    y_scratch: Vec<f32>,
    blob_scratch: Vec<u8>,
}

impl ShardCache {
    /// An empty cache for `layout` (version 0 everywhere — the store's
    /// versions start at 1, so the first sync fetches every shard).
    pub fn new(layout: ShardLayout) -> Self {
        let n = layout.param_count();
        let shards = layout.shards();
        ShardCache {
            layout,
            versions: vec![0; shards],
            full: vec![0.0; n],
            wants: Vec::with_capacity(shards),
            frames: Vec::new(),
            scratch: Vec::new(),
            codec: Codec::Raw,
            last_epoch: 0,
            push_residuals: Vec::new(),
            x_scratch: Vec::new(),
            y_scratch: Vec::new(),
            blob_scratch: Vec::new(),
        }
    }

    /// Selects the codec this cache requests and pushes under.
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// The codec currently in effect (may have downgraded to `Raw` after
    /// a structured unsupported-codec error).
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The cached shard versions.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// The assembled parameter vector as of the last successful sync.
    pub fn params(&self) -> &[f32] {
        &self.full
    }

    /// Brings the cache up to `manifest` for `epoch` and returns the
    /// assembled vector. A full cache hit performs no transport call and
    /// no allocation; otherwise the fetch request lists *every* shard with
    /// its cached version and the service ships back only the stale ones
    /// (counting the rest as cache hits).
    pub fn sync(
        &mut self,
        epoch: u64,
        manifest: &[u64],
        client: &mut dyn PsClient,
    ) -> Result<&[f32], PsError> {
        assert_eq!(manifest.len(), self.layout.shards(), "manifest length");
        if self.versions == manifest {
            self.last_epoch = epoch;
            return Ok(&self.full);
        }
        self.wants.clear();
        for (i, &have) in self.versions.iter().enumerate() {
            self.wants.push((i as u32, have));
        }
        self.frames.clear();
        let mut frames = std::mem::take(&mut self.frames);
        let summary = loop {
            frames.clear();
            match client.fetch(epoch, &self.wants, self.codec, &mut frames) {
                Ok(s) => break s,
                Err(PsError::UnsupportedCodec(_)) if self.codec != Codec::Raw => {
                    // Negotiation: the service answered with a structured
                    // error instead of a dead connection — downgrade to
                    // Raw for the rest of this cache's life and retry.
                    self.codec = Codec::Raw;
                }
                Err(e) => {
                    self.frames = frames;
                    return Err(e);
                }
            }
        };
        let mut applied = 0usize;
        for f in &frames {
            let i = f.shard_id as usize;
            if i >= self.layout.shards() {
                self.frames = frames;
                return Err(PsError::ShortResponse("shard id out of range"));
            }
            let range = self.layout.range(i);
            match f.kind {
                FrameKind::ShardDelta => {
                    let Ok(delta) = DeltaPayload::from_frame(f) else {
                        self.frames = frames;
                        return Err(PsError::ShortResponse("delta frame malformed"));
                    };
                    if delta.base != self.versions[i]
                        || delta
                            .codec
                            .decode_update_into(&delta.blob, range.len(), &mut self.scratch)
                            .is_err()
                    {
                        self.frames = frames;
                        return Err(PsError::ShortResponse("delta base or blob invalid"));
                    }
                    for (g, &u) in range.zip(self.scratch.iter()) {
                        self.full[g] += u;
                    }
                }
                _ => {
                    if decode_f32s_into(&f.payload, &mut self.scratch).is_err()
                        || self.scratch.len() != range.len()
                    {
                        self.frames = frames;
                        return Err(PsError::ShortResponse("shard blob malformed"));
                    }
                    self.full[range].copy_from_slice(&self.scratch);
                }
            }
            self.versions[i] = f.version;
            applied += 1;
        }
        self.frames = frames;
        if applied != summary.sent as usize {
            return Err(PsError::ShortResponse("shard count != summary"));
        }
        // Every wanted shard must now match the manifest; a skipped shard
        // we did not hold is a protocol violation.
        for (i, &want) in manifest.iter().enumerate() {
            if self.versions[i] != want {
                return Err(PsError::ShortResponse("wanted shard not delivered"));
            }
        }
        self.last_epoch = epoch;
        Ok(&self.full)
    }

    /// Pushes one trained shard, quantized and delta-encoded against the
    /// snapshot this cache last synced when a lossy codec is active.
    /// Structured server errors degrade gracefully: an unknown base
    /// resends this update at full precision, an unsupported codec
    /// downgrades the cache to `Raw` for good. Under `Raw` this is exactly
    /// the legacy full-precision push.
    pub fn push_update(
        &mut self,
        client: &mut dyn PsClient,
        shard_id: u32,
        epoch: u64,
        values: &[f32],
    ) -> Result<PushAck, PsError> {
        let i = shard_id as usize;
        assert!(i < self.layout.shards(), "shard id out of range");
        let range = self.layout.range(i);
        assert_eq!(values.len(), range.len(), "push length");
        if self.codec == Codec::Raw {
            return client.push(shard_id, epoch, values);
        }
        if self.push_residuals.len() != self.layout.shards() {
            self.push_residuals
                .resize_with(self.layout.shards(), Vec::new);
        }
        let base = &self.full[range];
        let mut x = std::mem::take(&mut self.x_scratch);
        let mut y = std::mem::take(&mut self.y_scratch);
        let mut blob = std::mem::take(&mut self.blob_scratch);
        let enc = encode_delta(
            self.codec,
            values,
            base,
            &mut self.push_residuals[i],
            &mut x,
            &mut blob,
            &mut y,
        );
        debug_assert!(enc.is_ok(), "own encoding always decodes");
        let result = client.push_delta(shard_id, epoch, self.last_epoch, self.codec, &blob);
        self.x_scratch = x;
        self.y_scratch = y;
        self.blob_scratch = blob;
        match result {
            Ok(ack) => Ok(ack),
            Err(PsError::UnknownBase(_)) => {
                // The base snapshot was retired server-side: nothing of
                // this update arrived, so drop the residual bookkeeping
                // and send the exact values instead.
                self.push_residuals[i].clear();
                client.push(shard_id, epoch, values)
            }
            Err(PsError::UnsupportedCodec(_)) => {
                self.codec = Codec::Raw;
                self.push_residuals[i].clear();
                client.push(shard_id, epoch, values)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::ShardedAssimilator;
    use vc_asgd::AlphaSchedule;
    use vc_kvstore::{Consistency, VersionedStore};

    fn setup(n: usize, p: usize) -> (Arc<PsService>, Vec<f32>, Vec<u64>) {
        let assim = Arc::new(ShardedAssimilator::new(
            Arc::new(VersionedStore::new()),
            n,
            p,
            Consistency::Eventual,
            AlphaSchedule::Const(0.5),
        ));
        let params: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25).collect();
        assim.seed_params(&params);
        let svc = Arc::new(PsService::new(assim));
        let (full, manifest) = svc.assimilator().read_params();
        svc.publish_snapshot(1, &full, &manifest);
        (svc, full, manifest)
    }

    #[test]
    fn cold_sync_fetches_everything() {
        let (svc, want, manifest) = setup(20, 4);
        let mut client = MemClient::new(svc.clone());
        let mut cache = ShardCache::new(*svc.assimilator().layout());
        let got = cache.sync(1, &manifest, &mut client).unwrap();
        assert_eq!(got, &want[..]);
        assert_eq!(svc.ops().shards_sent, 4);
    }

    #[test]
    fn warm_sync_is_a_cache_hit() {
        let (svc, want, manifest) = setup(20, 4);
        let mut client = MemClient::new(svc.clone());
        let mut cache = ShardCache::new(*svc.assimilator().layout());
        cache.sync(1, &manifest, &mut client).unwrap();
        let fetches_before = svc.ops().fetches;
        let got = cache.sync(1, &manifest, &mut client).unwrap();
        assert_eq!(got, &want[..]);
        assert_eq!(svc.ops().fetches, fetches_before, "no transport call");
    }

    #[test]
    fn partial_sync_fetches_only_moved_shards() {
        let (svc, _, manifest) = setup(20, 4);
        let mut client = MemClient::new(svc.clone());
        let mut cache = ShardCache::new(*svc.assimilator().layout());
        cache.sync(1, &manifest, &mut client).unwrap();
        // One shard merges: its version moves; republish as epoch 2.
        let part = vec![5.0; svc.assimilator().layout().len(2)];
        svc.assimilator().merge_shard(2, &part, 1);
        let (full, manifest2) = svc.assimilator().read_params();
        svc.publish_snapshot(2, &full, &manifest2);
        let before = svc.ops();
        let got = cache.sync(2, &manifest2, &mut client).unwrap();
        assert_eq!(got, &full[..]);
        let after = svc.ops();
        assert_eq!(after.shards_sent - before.shards_sent, 1);
        assert_eq!(after.cache_hits - before.cache_hits, 3);
    }

    #[test]
    fn reordered_shard_frames_assemble_identically() {
        let (svc, want, manifest) = setup(40, 8);
        let mut direct = MemClient::new(svc.clone());
        let mut c1 = ShardCache::new(*svc.assimilator().layout());
        let a = c1.sync(1, &manifest, &mut direct).unwrap().to_vec();
        let mut reordering = DelayedMemClient::new(svc.clone(), 0xDEAD);
        let mut c2 = ShardCache::new(*svc.assimilator().layout());
        let b = c2.sync(1, &manifest, &mut reordering).unwrap().to_vec();
        assert_eq!(a, want);
        assert_eq!(b, want, "frame order must not matter");
        assert_eq!(c1.versions(), c2.versions());
    }

    #[test]
    fn server_error_surfaces_as_ps_error() {
        let (svc, _, manifest) = setup(10, 2);
        let mut client = MemClient::new(svc.clone());
        let mut cache = ShardCache::new(*svc.assimilator().layout());
        let err = cache.sync(42, &manifest, &mut client).unwrap_err();
        assert!(matches!(err, PsError::Server(_)), "{err:?}");
    }

    #[test]
    fn push_through_mem_client_merges() {
        let (svc, _, _) = setup(10, 2);
        let mut client = MemClient::new(svc.clone());
        let n0 = svc.assimilator().layout().len(0);
        let ack = client.push(0, 1, &vec![8.0; n0]).unwrap();
        assert_eq!(ack.new_version, 2);
        assert_eq!(svc.ops().pushes, 1);
    }
}
