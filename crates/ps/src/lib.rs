//! # vc-ps — the sharded parameter service
//!
//! The paper stores "all the parameters of a model as a single value" in
//! one database key, so every assimilation serializes on one row and every
//! fetch ships the full 21.2 MB file. This crate splits the flat parameter
//! vector into `P` contiguous shards — each its own store key, version
//! counter, and per-shard VC-ASGD merge — behind a length-prefixed binary
//! wire protocol with two interchangeable transports:
//!
//! * **TCP** ([`TcpPsServer`]/[`TcpClient`]): blocking sockets on loopback,
//!   one listener per shard group.
//! * **In-memory** ([`MemClient`]): the same bytes through the same codec
//!   against an in-process service, synchronous, so deterministic
//!   simulation sweeps stay single-threaded and byte-identical.
//!
//! Because the Eq. (1) blend is elementwise, sharding never changes the
//! math: `P = 1` reproduces the single-value store *exactly* (same key,
//! same operation sequence), and any `P` produces bitwise-identical
//! parameters under the same merge order. What sharding changes is
//! contention — concurrent mergers pipeline through shards instead of
//! serializing on one row — and wire traffic: workers cache shards by
//! version ([`ShardCache`]) and fetch only what moved.

pub mod client;
pub mod codec;
pub mod merge;
pub mod queue;
pub mod service;
pub mod tcp;
pub mod wire;

pub use client::{DelayedMemClient, MemClient, PsClient, PsError, ShardCache};
pub use codec::Codec;
pub use merge::{shard_key, ShardSnapshot, ShardedAssimilator, PS_MERGE_S, PS_SHARD_SKEW_VERSIONS};
pub use queue::DelayQueue;
pub use service::{CodecOps, PsOps, PsService};
pub use tcp::{ShardGroups, TcpClient, TcpPsServer};
pub use wire::{
    crc32, error_frame, Crc32, FetchReq, FetchSummary, Frame, FrameKind, FrameReadError, PushAck,
    WireError, HEADER_LEN, MAX_PAYLOAD,
};
