//! Property tests over the wire codec: any frame round-trips bit-exactly,
//! and *no* mangled byte stream — truncated, bit-flipped, or carrying a
//! hostile length prefix — ever panics, allocates unboundedly, or decodes
//! to a different frame silently.

use proptest::prelude::*;
use vc_ps::{Frame, FrameKind, WireError, HEADER_LEN, MAX_PAYLOAD};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Fetch),
        Just(FrameKind::Shard),
        Just(FrameKind::FetchDone),
        Just(FrameKind::Push),
        Just(FrameKind::PushAck),
        Just(FrameKind::Error),
        Just(FrameKind::ShardDelta),
        Just(FrameKind::PushDelta),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        arb_kind(),
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(kind, shard_id, version, payload)| Frame {
            kind,
            shard_id,
            version,
            payload: payload.into(),
        })
}

proptest! {
    /// encode → decode is the identity, and the consumed length is exact.
    #[test]
    fn frame_roundtrips(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let (back, used) = Frame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.kind, frame.kind);
        prop_assert_eq!(back.shard_id, frame.shard_id);
        prop_assert_eq!(back.version, frame.version);
        prop_assert_eq!(back.payload.as_ref(), frame.payload.as_ref());
    }

    /// Every proper prefix is `Incomplete` with an honest byte count —
    /// never a panic, never a bogus frame.
    #[test]
    fn truncation_reports_incomplete(frame in arb_frame(), cut in 1usize..64) {
        let bytes = frame.encode();
        let cut = cut.min(bytes.len());
        match Frame::decode(&bytes[..bytes.len() - cut]) {
            Err(WireError::Incomplete { need }) => {
                prop_assert!(need > 0, "incomplete must ask for more bytes");
            }
            other => prop_assert!(false, "truncated decode returned {other:?}"),
        }
    }

    /// Any single flipped bit after the length prefix is caught by the CRC
    /// (or, for the kind byte, by the kind check after the CRC).
    #[test]
    fn bit_flips_never_pass(frame in arb_frame(), bit in 0usize..64) {
        let mut bytes = frame.encode();
        let pos = 4 + bit % (bytes.len() - 4);
        bytes[pos] ^= 1 << (bit % 8);
        match Frame::decode(&bytes) {
            Err(WireError::BadCrc { .. }) | Err(WireError::UnknownKind(_)) => {}
            Ok(_) => prop_assert!(false, "flipped bit at {pos} decoded cleanly"),
            Err(e) => prop_assert!(false, "unexpected error for flip at {pos}: {e:?}"),
        }
    }

    /// A forged length prefix is rejected *before* any allocation: lengths
    /// past `MAX_PAYLOAD` are `BadLength`, lengths shorter than a header
    /// too. Nothing in between decodes without the bytes to back it.
    #[test]
    fn hostile_lengths_rejected(frame in arb_frame(), len in any::<u32>()) {
        let mut bytes = frame.encode();
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let r = Frame::decode(&bytes);
        let max = (MAX_PAYLOAD + HEADER_LEN) as u32;
        if len < HEADER_LEN as u32 || len > max {
            prop_assert!(
                matches!(r, Err(WireError::BadLength(_))),
                "len {len} gave {r:?}"
            );
        } else {
            // In-range forged lengths either ask for more bytes or fail
            // the CRC — they never yield a frame with the wrong size.
            match r {
                Ok((f, _)) => prop_assert_eq!(f.payload.len(), len as usize - HEADER_LEN),
                Err(WireError::Incomplete { .. })
                | Err(WireError::BadCrc { .. })
                | Err(WireError::UnknownKind(_)) => {}
                Err(e) => prop_assert!(false, "len {len} gave {e:?}"),
            }
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes);
    }
}
