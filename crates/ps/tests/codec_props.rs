//! Property tests over the parameter codec layer: every mode's round-trip
//! error stays inside its documented bound, error feedback keeps lossy
//! push streams unbiased with a bounded residual, and no hostile blob —
//! truncated, bit-flipped, or wholly fabricated — ever panics a decoder.
//! Plain #[test]s at the bottom pin the codec negotiation contract: a
//! client asking for a codec the service does not speak gets a structured
//! error and degrades to `Raw` on a live connection.

use proptest::prelude::*;
use std::sync::Arc;
use vc_asgd::AlphaSchedule;
use vc_kvstore::{Consistency, VersionedStore};
use vc_ps::codec::encode_delta;
use vc_ps::merge::ShardedAssimilator;
use vc_ps::{Codec, MemClient, PsService, ShardCache};

fn arb_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![
        Just(Codec::Raw),
        Just(Codec::Fp16),
        any::<bool>().prop_map(|error_feedback| Codec::Int8 { error_feedback }),
        (1u32..64, any::<bool>()).prop_map(|(k, error_feedback)| Codec::TopK { k, error_feedback }),
    ]
}

fn arb_update() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0e4f32..1.0e4, 1..256)
}

/// Per-mode elementwise error bound for one encode→decode round trip.
fn bound(codec: Codec, x: &[f32]) -> f32 {
    let max = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    match codec {
        Codec::Raw => 0.0,
        // Half precision: 2⁻¹¹ relative error for normals, absolute
        // 2⁻²⁵ quantum below the subnormal threshold.
        Codec::Fp16 => max * 4.9e-4 + 3.0e-8,
        // Symmetric int8: half a quantization step of max/127.
        Codec::Int8 { .. } => max / 254.0 + max * 1.0e-6,
        // TopK transmits survivors exactly; dropped entries err by their
        // own magnitude, bounded by the k-th largest one (checked
        // separately below).
        Codec::TopK { .. } => max,
    }
}

proptest! {
    /// encode → decode of any update keeps every element inside the
    /// mode's error bound, and the blob never exceeds its advertised
    /// worst-case length.
    #[test]
    fn roundtrip_error_bounded(codec in arb_codec(), x in arb_update()) {
        let mut blob = Vec::new();
        codec.encode_update(&x, &mut blob);
        prop_assert!(
            blob.len() <= codec.blob_len(x.len()),
            "blob {} > advertised {}", blob.len(), codec.blob_len(x.len())
        );
        let mut y = Vec::new();
        codec.decode_update_into(&blob, x.len(), &mut y).expect("own encoding decodes");
        prop_assert_eq!(y.len(), x.len());
        let b = bound(codec, &x);
        for (i, (&xi, &yi)) in x.iter().zip(&y).enumerate() {
            prop_assert!(
                (xi - yi).abs() <= b,
                "{codec:?} elem {i}: |{xi} - {yi}| > {b}"
            );
        }
        // TopK: every transmitted element is exact, and at most k are.
        if let Codec::TopK { k, .. } = codec {
            let sent = y.iter().filter(|v| **v != 0.0).count();
            prop_assert!(sent <= k as usize, "TopK sent {sent} > k {k}");
            for (&xi, &yi) in x.iter().zip(&y) {
                prop_assert!(yi == 0.0 || yi == xi, "TopK must send exact values");
            }
        }
    }

    /// Raw is bit-exact, always.
    #[test]
    fn raw_roundtrip_bitwise(x in arb_update()) {
        let (mut blob, mut y) = (Vec::new(), Vec::new());
        Codec::Raw.encode_update(&x, &mut blob);
        Codec::Raw.decode_update_into(&blob, x.len(), &mut y).unwrap();
        prop_assert!(x.iter().zip(&y).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    /// With error feedback on, the residual after each step is exactly
    /// `x − y` (what the wire dropped), so the cumulative transmitted
    /// stream differs from the truth by at most one round's residual —
    /// it never drifts and never blows up.
    #[test]
    fn error_feedback_residual_is_exact_and_bounded(
        updates in proptest::collection::vec(arb_update(), 1..8),
        ef_codec in prop_oneof![
            Just(Codec::Int8 { error_feedback: true }),
            Just(Codec::TopK { k: 3, error_feedback: true }),
        ],
    ) {
        let n = updates[0].len();
        let mut acc = vec![0.0f32; n];
        let mut sum_u = vec![0.0f32; n];
        let mut residual = Vec::new();
        let (mut xs, mut blob, mut y) = (Vec::new(), Vec::new(), Vec::new());
        for u in &updates {
            let u = &u[..n.min(u.len())];
            let mut new = acc.clone();
            for (nv, &uv) in new.iter_mut().zip(u) {
                *nv += uv;
            }
            for (s, &uv) in sum_u.iter_mut().zip(u) {
                *s += uv;
            }
            // base for this round is the receiver's state (push model).
            encode_delta(ef_codec, &new, &acc, &mut residual, &mut xs, &mut blob, &mut y)
                .expect("encode_delta");
            for (a, &d) in acc.iter_mut().zip(&y) {
                *a += d;
            }
            // Invariant: truth − transmitted == residual (up to f32
            // rounding in the accumulators), elementwise.
            for i in 0..n {
                let drift = sum_u[i] - acc[i];
                let tol = 1.0e-3 * (1.0f32 + sum_u[i].abs().max(acc[i].abs()));
                prop_assert!(
                    (drift - residual[i]).abs() <= tol,
                    "residual must equal untransmitted mass: {} vs {}",
                    drift, residual[i]
                );
                prop_assert!(residual[i].is_finite(), "residual blew up");
            }
        }
    }

    /// No hostile blob panics any decoder: arbitrary bytes, arbitrary
    /// claimed element count. Errors leave the output empty.
    #[test]
    fn hostile_blobs_never_panic(
        codec in arb_codec(),
        blob in proptest::collection::vec(any::<u8>(), 0..512),
        n in 0usize..4096,
    ) {
        let mut out = Vec::new();
        if codec.decode_update_into(&blob, n, &mut out).is_err() {
            prop_assert!(out.is_empty(), "failed decode must leave no output");
        } else {
            prop_assert_eq!(out.len(), n);
        }
    }

    /// Bit-flipping a valid blob never panics; it either still decodes to
    /// `n` elements or fails cleanly.
    #[test]
    fn flipped_blobs_never_panic(
        codec in arb_codec(),
        x in arb_update(),
        flip_pos in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let mut blob = Vec::new();
        codec.encode_update(&x, &mut blob);
        if !blob.is_empty() {
            let pos = flip_pos as usize % blob.len();
            blob[pos] ^= 1 << flip_bit;
        }
        let mut out = Vec::new();
        match codec.decode_update_into(&blob, x.len(), &mut out) {
            Ok(()) => prop_assert_eq!(out.len(), x.len()),
            Err(_) => prop_assert!(out.is_empty()),
        }
    }
}

fn setup(n: usize, p: usize, supported: &[Codec]) -> (Arc<PsService>, Vec<f32>, Vec<u64>) {
    let assim = Arc::new(ShardedAssimilator::new(
        Arc::new(VersionedStore::new()),
        n,
        p,
        Consistency::Eventual,
        AlphaSchedule::Const(0.5),
    ));
    let params: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25).collect();
    assim.seed_params(&params);
    let svc = Arc::new(PsService::new(assim).with_supported(supported));
    let (full, manifest) = svc.assimilator().read_params();
    svc.publish_snapshot(1, &full, &manifest);
    (svc, full, manifest)
}

/// Satellite fix: a client requesting a codec the service does not speak
/// must get a structured error and fall back to Raw on the same
/// connection — not a dead connection, not a panic.
#[test]
fn unsupported_codec_negotiates_down_to_raw() {
    let (svc, want, manifest) = setup(40, 4, &[]); // Raw only
    let mut client = MemClient::new(svc.clone());
    let mut cache = ShardCache::new(*svc.assimilator().layout()).with_codec(Codec::Int8 {
        error_feedback: true,
    });
    let got = cache
        .sync(1, &manifest, &mut client)
        .expect("sync survives");
    assert_eq!(got, &want[..]);
    assert_eq!(cache.codec(), Codec::Raw, "cache downgraded for good");
    // The downgraded connection keeps working, including pushes.
    let range = svc.assimilator().layout().range(0);
    let values: Vec<f32> = want[range].iter().map(|v| v + 1.0).collect();
    cache
        .push_update(&mut client, 0, 1, &values)
        .expect("push after downgrade");
}

/// A push in a codec the service does not speak degrades to a raw push
/// (and the merge still lands) instead of erroring out.
#[test]
fn unsupported_push_falls_back_to_raw() {
    let (svc, want, manifest) = setup(40, 4, &[]);
    let mut client = MemClient::new(svc.clone());
    // Cache negotiated nothing yet: push directly with a lossy codec.
    let mut cache = ShardCache::new(*svc.assimilator().layout()).with_codec(Codec::Fp16);
    cache.sync(1, &manifest, &mut client).expect("sync");
    assert_eq!(cache.codec(), Codec::Raw);
    let range = svc.assimilator().layout().range(1);
    let values: Vec<f32> = want[range].iter().map(|v| v * 2.0).collect();
    let ack = cache
        .push_update(&mut client, 1, 1, &values)
        .expect("push falls back");
    assert!(ack.new_version > manifest[1]);
}

/// A supported lossy codec actually ships deltas once the second epoch
/// publishes, and the service accounts the saved bytes.
#[test]
fn supported_lossy_codec_ships_deltas() {
    let codec = Codec::Int8 {
        error_feedback: true,
    };
    let n = 400;
    let assim = Arc::new(ShardedAssimilator::new(
        Arc::new(VersionedStore::new()),
        n,
        4,
        Consistency::Eventual,
        AlphaSchedule::Const(0.5),
    ));
    let params: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25).collect();
    assim.seed_params(&params);
    let svc = Arc::new(
        PsService::new(assim)
            .with_codec(codec)
            .with_supported(&[codec]),
    );
    let (full0, manifest) = svc.assimilator().read_params();
    svc.publish_snapshot(1, &full0, &manifest);
    let mut client = MemClient::new(svc.clone());
    let mut cache = ShardCache::new(*svc.assimilator().layout()).with_codec(codec);
    cache.sync(1, &manifest, &mut client).expect("cold sync");
    // Nudge the params and publish epoch 2: the fetch should ride deltas.
    let (full, m1) = svc.assimilator().read_params();
    let range = svc.assimilator().layout().range(0);
    let values: Vec<f32> = full[range].iter().map(|v| v + 0.5).collect();
    cache.push_update(&mut client, 0, 1, &values).expect("push");
    let (full2, m2) = svc.assimilator().read_params();
    assert_ne!(m1, m2);
    svc.publish_snapshot(2, &full2, &m2);
    cache.sync(2, &m2, &mut client).expect("warm sync");
    let ops = svc.codec_ops();
    assert!(
        ops.deltas_sent > 0,
        "warm fetch should ship deltas: {ops:?}"
    );
    assert!(ops.delta_pushes > 0, "push should arrive as delta: {ops:?}");
    assert!(ops.bytes_saved > 0, "codec must save bytes: {ops:?}");
}
