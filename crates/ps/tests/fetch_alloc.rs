//! Counting-allocator proof of the hot fetch path's zero-alloc claim: a
//! worker whose sticky cache already matches the workunit's manifest gets
//! its parameter slice back without touching the heap — no blob clone, no
//! frame encode, no transport call. This is the per-assignment steady
//! state: parameters only move when an assimilation actually bumped a
//! shard's version.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(p, l, new_size)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn cache_hit_sync_does_not_allocate() {
    use std::sync::Arc;
    use vc_asgd::AlphaSchedule;
    use vc_kvstore::{Consistency, VersionedStore};
    use vc_ps::{MemClient, PsService, ShardCache, ShardedAssimilator};

    let n = 4096;
    let store = Arc::new(VersionedStore::new());
    let assim = Arc::new(ShardedAssimilator::new(
        store,
        n,
        4,
        Consistency::Strong,
        AlphaSchedule::Const(0.6),
    ));
    let params: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    assim.seed_params(&params);
    let svc = Arc::new(PsService::new(assim.clone()));
    let manifest = assim.versions();
    svc.publish_snapshot(1, &params, &manifest);

    let mut client = MemClient::new(svc.clone());
    let mut cache = ShardCache::new(*assim.layout());
    // Cold sync fills the cache (allocates freely: blobs, frames, buffers).
    let got = cache.sync(1, &manifest, &mut client).expect("cold sync");
    assert_eq!(got, params.as_slice());
    let ops_before = svc.ops();

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..32 {
        let got = cache.sync(1, &manifest, &mut client).expect("warm sync");
        assert_eq!(got.len(), n);
    }
    COUNTING.store(false, Ordering::SeqCst);

    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "a fully-cached sync must not touch the heap"
    );
    assert_eq!(
        svc.ops(),
        ops_before,
        "a fully-cached sync must not even reach the service"
    );
    assert_eq!(
        cache.params(),
        params.as_slice(),
        "cache still serves the snapshot"
    );
}
