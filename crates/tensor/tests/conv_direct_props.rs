//! Property tests: the direct 3×3 stride-1 conv kernels vs the
//! im2col+GEMM reference, compared **bitwise**.
//!
//! The direct path's contract (see `conv_direct`'s module docs) is that
//! every output element is the same fused-multiply-add chain in the same
//! order as the lowered route, so these properties never use a tolerance.
//! The reference here is assembled from the exact public pieces the layer
//! code uses: `im2col` → `matmul_a_bt_epi_into` (forward),
//! `matmul_epi_into` → `col2im_into` (dx), `matmul_at_b_epi_into` with
//! `Accumulate` (dK), plus the pure index permutations between row-major
//! `[rows, oc]` matrices and `[b, oc, oh, ow]` image tensors.

use proptest::prelude::*;
use vc_tensor::conv_direct::{
    conv3x3_backward_dk_into, conv3x3_backward_dx_into, conv3x3_forward_into, dk_scratch_len,
    dx_scratch_len, fwd_scratch_len,
};
use vc_tensor::ops::{
    col2im_into, im2col, matmul_a_bt_epi_into, matmul_at_b_epi_into, matmul_epi_into, ConvGeom,
    Epilogue,
};
use vc_tensor::{NormalSampler, Tensor};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn geom(h: usize, w: usize, pad: usize) -> ConvGeom {
    ConvGeom {
        h,
        w,
        kh: 3,
        kw: 3,
        stride: 1,
        pad,
    }
}

/// `[rows, oc]` flat matrix → `[b, oc, oh, ow]` images (pure copy).
fn rows_to_images(flat: &[f32], batch: usize, oc: usize, ohw: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; flat.len()];
    for b in 0..batch {
        for c in 0..oc {
            for px in 0..ohw {
                out[(b * oc + c) * ohw + px] = flat[(b * ohw + px) * oc + c];
            }
        }
    }
    out
}

/// `[b, oc, oh, ow]` images → `[rows, oc]` flat matrix (pure copy).
fn images_to_rows(img: &[f32], batch: usize, oc: usize, ohw: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; img.len()];
    for b in 0..batch {
        for c in 0..oc {
            for px in 0..ohw {
                out[(b * ohw + px) * oc + c] = img[(b * oc + c) * ohw + px];
            }
        }
    }
    out
}

struct Case {
    input: Tensor,
    kernel: Tensor,
    bias: Tensor,
    dy: Tensor,
    g: ConvGeom,
    batch: usize,
    ch: usize,
    out_ch: usize,
}

fn make_case(
    batch: usize,
    ch: usize,
    out_ch: usize,
    h: usize,
    w: usize,
    pad: usize,
    seed: u64,
) -> Case {
    let g = geom(h, w, pad);
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut s = NormalSampler::seed_from(seed);
    Case {
        input: Tensor::randn(&[batch, ch, h, w], 0.0, 1.0, &mut s),
        kernel: Tensor::randn(&[out_ch, ch * 9], 0.0, 0.5, &mut s),
        bias: Tensor::randn(&[out_ch], 0.0, 0.5, &mut s),
        dy: Tensor::randn(&[batch, out_ch, oh, ow], 0.0, 1.0, &mut s),
        g,
        batch,
        ch,
        out_ch,
    }
}

fn check_forward(c: &Case, epi_kind: u8) {
    let (oh, ow) = (c.g.out_h(), c.g.out_w());
    let ohw = oh * ow;
    let epi = match epi_kind {
        0 => Epilogue::Store,
        1 => Epilogue::Bias(c.bias.data()),
        _ => Epilogue::BiasRelu(c.bias.data()),
    };
    // Reference: materialize columns, GEMM against Kᵀ, permute to images.
    let cols = im2col(&c.input, c.ch, c.g);
    let mut flat = vec![0.0f32; c.batch * ohw * c.out_ch];
    matmul_a_bt_epi_into(&cols, &c.kernel, &mut flat, epi);
    let want = rows_to_images(&flat, c.batch, c.out_ch, ohw);
    // Direct.
    let mut got = vec![0.0f32; want.len()];
    let mut stage = vec![0.0f32; fwd_scratch_len(c.batch, c.ch, c.g)];
    conv3x3_forward_into(&c.input, &c.kernel, c.g, &mut got, epi, &mut stage);
    assert_eq!(bits(&got), bits(&want), "forward epi={epi_kind}");
}

fn check_dx(c: &Case) {
    let (oh, ow) = (c.g.out_h(), c.g.out_w());
    let ohw = oh * ow;
    let rows = c.batch * ohw;
    // Reference: dy → rows, dcols = dy_rows · K, col2im scatter.
    let dy_rows = Tensor::from_vec(
        images_to_rows(c.dy.data(), c.batch, c.out_ch, ohw),
        &[rows, c.out_ch],
    );
    let mut dcols = vec![0.0f32; rows * c.ch * 9];
    matmul_epi_into(&dy_rows, &c.kernel, &mut dcols, Epilogue::Store);
    let mut want = vec![0.0f32; c.batch * c.ch * c.g.h * c.g.w];
    col2im_into(
        &Tensor::from_vec(dcols, &[rows, c.ch * 9]),
        c.batch,
        c.ch,
        c.g,
        &mut want,
    );
    // Direct (fused): no dcols matrix, per-image band scratch.
    let mut got = vec![0.0f32; want.len()];
    let mut scratch = vec![0.0f32; dx_scratch_len(c.batch, c.ch, c.out_ch)];
    conv3x3_backward_dx_into(&c.dy, &c.kernel, c.ch, c.g, &mut got, &mut scratch);
    assert_eq!(bits(&got), bits(&want), "dx");
}

fn check_dk(c: &Case, seed: u64) {
    let (oh, ow) = (c.g.out_h(), c.g.out_w());
    let ohw = oh * ow;
    let rows = c.batch * ohw;
    let patch = c.ch * 9;
    // Both paths accumulate onto the same nonzero starting gradient, so the
    // Accumulate epilogue semantics are covered too.
    let mut s = NormalSampler::seed_from(seed ^ 0xdead);
    let dk0 = Tensor::randn(&[c.out_ch, patch], 0.0, 1.0, &mut s);
    let dy_rows = Tensor::from_vec(
        images_to_rows(c.dy.data(), c.batch, c.out_ch, ohw),
        &[rows, c.out_ch],
    );
    let cols = im2col(&c.input, c.ch, c.g);
    let mut want = dk0.data().to_vec();
    matmul_at_b_epi_into(&dy_rows, &cols, &mut want, Epilogue::Accumulate);
    let mut got = dk0.data().to_vec();
    let mut scratch = vec![0.0f32; dk_scratch_len(c.ch, c.out_ch, c.g)];
    conv3x3_backward_dk_into(&c.dy, &c.input, c.g, &mut got, &mut scratch);
    assert_eq!(bits(&got), bits(&want), "dK");
}

proptest! {
    #[test]
    fn forward_bitwise_vs_im2col(
        batch in 1usize..4,
        ch in 1usize..4,
        out_ch in 1usize..7,
        h in 1usize..8,
        w in 1usize..8,
        pad in 0usize..3,
        epi_kind in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let c = make_case(batch, ch, out_ch, h, w, pad, seed);
        check_forward(&c, epi_kind);
    }

    #[test]
    fn backward_bitwise_vs_im2col(
        batch in 1usize..4,
        ch in 1usize..4,
        out_ch in 1usize..7,
        h in 1usize..8,
        w in 1usize..8,
        pad in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let c = make_case(batch, ch, out_ch, h, w, pad, seed);
        check_dx(&c);
        check_dk(&c, seed);
    }
}

/// Degenerate geometries the strategy ranges only graze: 1×1 spatial
/// output (kernel covers the whole padded input), single-pixel images,
/// batch=1, ch=1, and an out_ch that is not a multiple of the OCB=4
/// channel block.
#[test]
fn degenerate_geometries_bitwise() {
    for (batch, ch, out_ch, h, w, pad) in [
        (1, 1, 1, 1, 1, 1), // 1×1 input, pad 1 → 1×1 output, all-edge taps
        (1, 1, 5, 1, 1, 1), // OCB remainder of 1
        (2, 3, 4, 1, 5, 1), // single-row images
        (2, 3, 4, 5, 1, 1), // single-column images
        (1, 2, 3, 3, 3, 0), // pad 0 → 1×1 output from the interior only
        (1, 1, 1, 2, 2, 2), // pad 2: output wider than the input
        (3, 2, 6, 9, 9, 1), // ow=9: vector span + scalar remainder lanes
    ] {
        let c = make_case(
            batch,
            ch,
            out_ch,
            h,
            w,
            pad,
            (batch * 31 + h * 7 + w) as u64,
        );
        for epi in 0..3 {
            check_forward(&c, epi);
        }
        check_dx(&c);
        check_dk(&c, 17);
    }
}

/// A training-shaped case past `PAR_THRESHOLD`, so the forward and dx
/// kernels take their parallel per-image path; repeated runs must also
/// reproduce identical bytes (run-to-run determinism on the pool).
#[test]
fn parallel_path_bitwise_and_deterministic() {
    let c = make_case(4, 8, 8, 16, 16, 1, 4242);
    check_forward(&c, 2);
    check_dx(&c);
    check_dk(&c, 4242);
    let mut first: Option<Vec<u32>> = None;
    for _ in 0..4 {
        let mut out = vec![0.0f32; 4 * 8 * 16 * 16];
        let mut stage = vec![0.0f32; fwd_scratch_len(4, 8, c.g)];
        conv3x3_forward_into(
            &c.input,
            &c.kernel,
            c.g,
            &mut out,
            Epilogue::Bias(c.bias.data()),
            &mut stage,
        );
        let b = bits(&out);
        match &first {
            None => first = Some(b),
            Some(f) => assert_eq!(&b, f, "pool run changed the bytes"),
        }
    }
}
