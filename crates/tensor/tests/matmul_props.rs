//! Property tests for the blocked GEMM kernels.
//!
//! The microkernel's contract is stronger than "approximately right": every
//! variant must match [`matmul_naive`]'s ascending-`k` fused-multiply-add
//! chain **bitwise**, for any shape including degenerate ones (empty
//! matrices, single rows/columns, shapes past the parallel threshold). These
//! properties are what the DST byte-identity suite rests on, so they are
//! checked here as bit patterns, never with a tolerance.

use proptest::prelude::*;
use vc_tensor::ops::{matmul, matmul_a_bt, matmul_at_b, matmul_naive, Epilogue};
use vc_tensor::ops::{matmul_a_bt_epi_into, matmul_at_b_epi_into, matmul_epi_into};
use vc_tensor::{NormalSampler, Tensor};

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut s = NormalSampler::seed_from(seed);
    (
        Tensor::randn(&[m, k], 0.0, 1.0, &mut s),
        Tensor::randn(&[k, n], 0.0, 1.0, &mut s),
    )
}

proptest! {
    #[test]
    fn blocked_matmul_is_bitwise_naive(dims in (0usize..48, 0usize..40, 0usize..48), seed in 0u64..1_000_000) {
        let (m, k, n) = dims;
        let (a, b) = rand_pair(m, k, n, seed);
        prop_assert_eq!(bits(&matmul(&a, &b)), bits(&matmul_naive(&a, &b)));
    }

    #[test]
    fn at_b_is_bitwise_naive(dims in (0usize..40, 0usize..40, 0usize..40), seed in 0u64..1_000_000) {
        // matmul_at_b(aᵀ, b) computes a·b without materializing aᵀᵀ; packing
        // normalizes the layout, so even the transposed path is bit-exact.
        let (m, k, n) = dims;
        let (a, b) = rand_pair(m, k, n, seed);
        prop_assert_eq!(bits(&matmul_at_b(&a.transpose(), &b)), bits(&matmul_naive(&a, &b)));
    }

    #[test]
    fn a_bt_is_bitwise_naive(dims in (0usize..40, 0usize..40, 0usize..40), seed in 0u64..1_000_000) {
        let (m, k, n) = dims;
        let (a, b) = rand_pair(m, k, n, seed);
        prop_assert_eq!(bits(&matmul_a_bt(&a, &b.transpose())), bits(&matmul_naive(&a, &b)));
    }

    #[test]
    fn epilogue_variants_agree_across_kernels(dims in (1usize..24, 1usize..24, 1usize..24), seed in 0u64..1_000_000) {
        // All three kernels with the same logical operands and epilogue must
        // write the same bits: they share one gemm and one reduction order.
        let (m, k, n) = dims;
        let (a, b) = rand_pair(m, k, n, seed);
        let mut s = NormalSampler::seed_from(seed ^ 0xb1a5);
        let bias = Tensor::randn(&[n], 0.0, 1.0, &mut s);
        let epi = Epilogue::BiasRelu(bias.data());
        let mut o1 = vec![0.0f32; m * n];
        let mut o2 = vec![0.0f32; m * n];
        let mut o3 = vec![0.0f32; m * n];
        matmul_epi_into(&a, &b, &mut o1, epi);
        matmul_at_b_epi_into(&a.transpose(), &b, &mut o2, epi);
        matmul_a_bt_epi_into(&a, &b.transpose(), &mut o3, epi);
        let b1: Vec<u32> = o1.iter().map(|x| x.to_bits()).collect();
        let b2: Vec<u32> = o2.iter().map(|x| x.to_bits()).collect();
        let b3: Vec<u32> = o3.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(&b1, &b2);
        prop_assert_eq!(&b1, &b3);
    }
}

/// Shapes well past `PAR_THRESHOLD` run on the persistent pool; repeated
/// calls must reproduce the same bytes (threads pick *which* row band to
/// compute, never the order within an output element's reduction).
#[test]
fn parallel_path_is_run_to_run_deterministic() {
    let (a, b) = rand_pair(130, 70, 90, 99);
    let first = bits(&matmul(&a, &b));
    for _ in 0..8 {
        assert_eq!(bits(&matmul(&a, &b)), first, "pool run changed the bytes");
    }
    assert_eq!(first, bits(&matmul_naive(&a, &b)));
    // Same property through the accumulate epilogue (the gradient path).
    let mut acc1 = vec![0.0f32; 130 * 90];
    let mut acc2 = vec![0.0f32; 130 * 90];
    for _ in 0..3 {
        matmul_epi_into(&a, &b, &mut acc1, Epilogue::Accumulate);
        matmul_epi_into(&a, &b, &mut acc2, Epilogue::Accumulate);
    }
    assert_eq!(
        acc1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        acc2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

/// The degenerate shapes the trainer can actually produce (last ragged
/// batch, 1-sample batches, empty label sets) all round-trip the kernels.
#[test]
fn degenerate_shapes_are_bitwise_naive() {
    for (m, k, n) in [
        (0, 5, 7),
        (5, 0, 7),
        (5, 7, 0),
        (1, 1, 1),
        (1, 33, 1),
        (17, 1, 19),
        (1, 9, 64),
        (64, 9, 1),
    ] {
        let (a, b) = rand_pair(m, k, n, (m * 1000 + k * 100 + n) as u64);
        assert_eq!(
            bits(&matmul(&a, &b)),
            bits(&matmul_naive(&a, &b)),
            "shape ({m},{k},{n})"
        );
    }
}
