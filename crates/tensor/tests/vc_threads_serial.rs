//! `VC_THREADS=1` must force the whole substrate serial — and serial must
//! mean *the same bytes*, not just the same math.
//!
//! This file holds exactly one test so the env var is set before anything
//! in this process can touch the lazily-built worker pool (integration test
//! binaries each run in their own process; a second test here could race
//! the pool initialization).

use vc_tensor::ops::{matmul, matmul_naive};
use vc_tensor::{NormalSampler, Tensor};

#[test]
fn vc_threads_1_is_serial_and_bit_identical() {
    std::env::set_var("VC_THREADS", "1");
    // Large enough to cross the parallel threshold — with the override the
    // pool must still run it inline on this thread.
    let mut s = NormalSampler::seed_from(5);
    let a = Tensor::randn(&[150, 80], 0.0, 1.0, &mut s);
    let b = Tensor::randn(&[80, 120], 0.0, 1.0, &mut s);
    let blocked = matmul(&a, &b);
    assert_eq!(
        rayon::max_threads(),
        1,
        "VC_THREADS=1 must cap the pool before its first use"
    );
    let naive = matmul_naive(&a, &b);
    assert_eq!(
        blocked
            .data()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        naive.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "serial pool run must be byte-identical to the reference"
    );
}
