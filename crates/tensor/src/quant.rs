//! Quantize / dequantize kernels for the parameter-transfer codec layer.
//!
//! These are the numeric primitives behind `vc-ps`'s update codecs: IEEE
//! half-precision conversion, symmetric int8 affine quantization, and
//! top-k magnitude selection. Everything here operates on caller-owned
//! slices so the wire layer can drive them from pooled
//! [`Workspace`](crate::workspace::Workspace) buffers without allocating in
//! steady state.
//!
//! The loops are written as straight chunk-free scalar passes over slices —
//! bounds-check-eliminated, branch-light bodies that LLVM auto-vectorizes on
//! every target we build for. No intrinsics, no `unsafe`.
//!
//! Determinism matters more than speed here: every kernel is a pure
//! function of its inputs with a total order on ties (`f32::total_cmp`),
//! so the discrete-event simulator replays bit-identically per seed.

/// Round a finite `f32` to IEEE 754 binary16, round-to-nearest-even,
/// returned as the raw 16-bit pattern.
///
/// Handles the full range: values over `f16::MAX` clamp to infinity,
/// subnormal halves are produced for tiny magnitudes, NaN maps to a quiet
/// NaN pattern. Hand-rolled because the codec layer cannot take new
/// dependencies.
#[inline]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN. Keep a mantissa bit set for NaN so it stays NaN.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, re-biased for f16 (bias 15 vs f32's 127).
    let e = exp - 127 + 15;
    if e >= 0x1f {
        // Overflow: round to infinity.
        return sign | 0x7c00;
    }
    if e <= 0 {
        // Subnormal half (or underflow to zero). The implicit leading 1
        // becomes explicit, then the whole significand shifts right.
        if e < -10 {
            return sign; // too small for even a subnormal: signed zero
        }
        let man = man | 0x0080_0000; // make the implicit bit explicit
        let shift = 14 - e; // 14..=24
        let half = man >> shift;
        // Round to nearest even on the bits shifted out.
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    // Normal half: keep the top 10 mantissa bits, round-to-nearest-even.
    let half = (e as u32) << 10 | man >> 13;
    let rem = man & 0x1fff;
    let rounded = if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
        half + 1 // may carry into the exponent; that is exactly correct
    } else {
        half
    };
    sign | rounded as u16
}

/// Expand a raw binary16 bit pattern back to `f32`. Exact (f16 ⊂ f32).
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = (h as u32 & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = h as u32 & 0x03ff;
    let bits = match exp {
        0 => {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal half (value = man × 2⁻²⁴): normalize into an
                // f32 normal. The MSB of `man` sits at bit `10 − shift`;
                // shifting by `shift` parks it at bit 10 where the mask
                // drops it as the implicit leading 1.
                let shift = man.leading_zeros() - 21;
                let man = (man << shift) & 0x03ff;
                let e = 127 - 14 - shift;
                sign | e << 23 | man << 13
            }
        }
        0x1f => sign | 0x7f80_0000 | man << 13, // Inf / NaN
        _ => sign | (exp as u32 + 127 - 15) << 23 | man << 13,
    };
    f32::from_bits(bits)
}

/// `dst[i] = f16(src[i])` for whole slices. `dst.len()` must equal
/// `src.len()`.
pub fn f16_encode_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16_bits(s);
    }
}

/// Inverse of [`f16_encode_slice`].
pub fn f16_decode_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(s);
    }
}

/// Symmetric int8 scale for a slice: `max|x| / 127`, or 0.0 for an
/// all-zero (or empty) slice. Non-finite inputs are ignored when sizing the
/// scale so one hostile NaN cannot zero out the whole shard.
pub fn int8_scale(src: &[f32]) -> f32 {
    let mut max = 0.0f32;
    for &x in src {
        let a = x.abs();
        if a.is_finite() && a > max {
            max = a;
        }
    }
    max / 127.0
}

/// Quantize one value to a `[-127, 127]` code given the *inverse* scale
/// (`round(x · inv)`, clamped). The code `-128` is never produced — the
/// wire layer reserves it as an escape byte. NaN maps to 0.
#[inline]
pub fn int8_quantize_one(x: f32, inv_scale: f32) -> i8 {
    let q = (x * inv_scale).round();
    if q.is_nan() {
        0
    } else {
        q.clamp(-127.0, 127.0) as i8
    }
}

/// Quantize `src` into `[-127, 127]` codes with the given scale. A zero
/// scale maps everything to 0.
pub fn int8_quantize_slice(src: &[f32], scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len());
    if scale == 0.0 {
        dst.fill(0);
        return;
    }
    let inv = 1.0 / scale;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = int8_quantize_one(s, inv);
    }
}

/// `dst[i] = codes[i] * scale`.
pub fn int8_dequantize_slice(codes: &[i8], scale: f32, dst: &mut [f32]) {
    assert_eq!(codes.len(), dst.len());
    for (d, &c) in dst.iter_mut().zip(codes) {
        *d = c as f32 * scale;
    }
}

/// Indices of the `k` largest-magnitude elements of `src`, returned sorted
/// ascending. Deterministic: ties break toward the lower index, NaN sorts
/// below every finite magnitude (`total_cmp` on `|x|`). `k` is clamped to
/// `src.len()`.
pub fn topk_indices(src: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(src.len());
    let mut idx: Vec<u32> = (0..src.len() as u32).collect();
    if k < src.len() {
        // NaN magnitudes rank below every finite one (total_cmp would
        // rank them above +inf), so poisoned inputs never crowd out real
        // updates.
        let mag = |v: f32| {
            let a = v.abs();
            if a.is_nan() {
                -1.0
            } else {
                a
            }
        };
        idx.select_nth_unstable_by(k.saturating_sub(1).min(src.len() - 1), |&a, &b| {
            let ma = mag(src[a as usize]);
            let mb = mag(src[b as usize]);
            mb.total_cmp(&ma).then(a.cmp(&b))
        });
        idx.truncate(k);
    }
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_exact_halves() {
        for x in [0.0f32, -0.0, 1.0, -1.5, 0.5, 65504.0, -65504.0, 6.1e-5] {
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(
                f32_to_f16_bits(y),
                f32_to_f16_bits(x),
                "re-encode of {x} unstable"
            );
        }
        // Values exactly representable in f16 survive untouched.
        for x in [1.0f32, 2.0, 0.25, -3.0, 1024.0] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), x);
        }
    }

    #[test]
    fn f16_relative_error_bounded() {
        // 2^-11 relative error for normal halves.
        let mut x = 1.0e-4f32;
        while x < 6.0e4 {
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!(
                (y - x).abs() <= x * 4.9e-4 + 6.0e-8,
                "f16({x}) = {y}, error too large"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn f16_specials() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(1.0e9), 0x7c00, "overflow clamps to inf");
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16_bits(1.0e-12), 0, "underflow to signed zero");
        // Subnormal halves exist between 2^-24 and 2^-14.
        let tiny = 3.0e-6f32;
        let y = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert!(y > 0.0 && (y - tiny).abs() < 6.0e-8);
    }

    #[test]
    fn int8_roundtrip_error_half_scale() {
        let src: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 0.013).collect();
        let scale = int8_scale(&src);
        let mut codes = vec![0i8; src.len()];
        int8_quantize_slice(&src, scale, &mut codes);
        let mut back = vec![0.0f32; src.len()];
        int8_dequantize_slice(&codes, scale, &mut back);
        for (&x, &y) in src.iter().zip(&back) {
            assert!((x - y).abs() <= scale * 0.5 + 1e-7, "|{x} - {y}| > scale/2");
        }
        assert!(codes.iter().all(|&c| c != i8::MIN), "-128 is reserved");
    }

    #[test]
    fn int8_zero_scale_and_hostile_values() {
        let mut codes = vec![1i8; 4];
        int8_quantize_slice(&[0.0; 4], 0.0, &mut codes);
        assert_eq!(codes, vec![0; 4]);
        // NaN/Inf do not poison the scale of the rest of the shard.
        let src = [1.0f32, f32::NAN, f32::INFINITY, -2.0];
        let scale = int8_scale(&src);
        assert!((scale - 2.0 / 127.0).abs() < 1e-9);
    }

    #[test]
    fn topk_picks_largest_magnitudes_deterministically() {
        let src = [0.1f32, -5.0, 3.0, 3.0, -0.2, 4.0];
        assert_eq!(topk_indices(&src, 3), vec![1, 2, 5]);
        // Tie between indices 2 and 3 (both |3.0|) resolves to the lower.
        assert_eq!(topk_indices(&src, 4), vec![1, 2, 3, 5]);
        assert_eq!(topk_indices(&src, 0), Vec::<u32>::new());
        assert_eq!(topk_indices(&src, 99).len(), 6, "k clamps to len");
    }

    #[test]
    fn topk_handles_nan_without_panicking() {
        let src = [f32::NAN, 2.0, -3.0, f32::NAN];
        let idx = topk_indices(&src, 2);
        assert_eq!(idx, vec![1, 2], "NaN magnitudes sort below finite ones");
    }
}
