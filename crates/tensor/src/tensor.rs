//! The [`Tensor`] type: an owned, contiguous, row-major `f32` array.

use crate::rng::NormalSampler;
use crate::shape::Shape;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned, contiguous, row-major `f32` tensor with dynamic shape.
///
/// Everything in the training pipeline — images, activations, gradients and
/// the flat parameter vectors exchanged by VC-ASGD — is a `Tensor`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Builds a tensor from a data vector and dimension extents.
    ///
    /// Panics when `data.len()` disagrees with the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Samples i.i.d. `N(mean, std^2)` entries from a seeded sampler.
    pub fn randn(dims: &[usize], mean: f32, std: f32, sampler: &mut NormalSampler) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| sampler.sample() * std + mean)
            .collect();
        Tensor { shape, data }
    }

    /// Samples i.i.d. `U(lo, hi)` entries.
    pub fn rand_uniform<R: Rng>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// He-normal initialization (`std = sqrt(2 / fan_in)`), the paper's
    /// initializer for the ResNetV2 model.
    pub fn he_normal(dims: &[usize], fan_in: usize, sampler: &mut NormalSampler) -> Self {
        assert!(fan_in > 0, "he_normal requires a positive fan_in");
        let std = (2.0 / fan_in as f32).sqrt();
        Self::randn(dims, 0.0, std, sampler)
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat, row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    // ------------------------------------------------------------- reshapes

    /// Returns a tensor with the same data and a new shape of equal element
    /// count. Cheap: the buffer is moved, not copied.
    pub fn reshape(self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "cannot reshape {} elements into {}",
            self.data.len(),
            shape
        );
        Tensor {
            shape,
            data: self.data,
        }
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Extracts row `r` of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, r: usize) -> Self {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let n = self.shape.dim(1);
        Tensor::from_vec(self.data[r * n..(r + 1) * n].to_vec(), &[n])
    }

    // ---------------------------------------------------------- elementwise

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary op between same-shape tensors.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_with requires equal shapes ({} vs {})",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// `self - other`, elementwise.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a - b)
    }

    /// `self * other`, elementwise (Hadamard product).
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// `self * s`, scalar product.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place `self += other`. The hot path of every optimizer step and of
    /// the VC-ASGD server update, so it avoids allocation.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += s * other` (axpy).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// In-place `self = alpha * self + beta * other`; this is exactly Eq. (1)
    /// of the paper with `beta = 1 - alpha`, kept general for the baselines.
    pub fn blend(&mut self, alpha: f32, beta: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "blend requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = alpha * *a + beta * b;
        }
    }

    /// Adds a rank-1 bias to every row of a rank-2 tensor (broadcast over
    /// axis 0).
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Self {
        assert_eq!(self.shape.rank(), 2, "add_row_broadcast needs rank 2");
        assert_eq!(bias.shape.rank(), 1, "bias must be rank 1");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(bias.numel(), n, "bias length must match row width");
        let mut out = self.data.clone();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += bias.data[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element of a rank-1 tensor (ties → first).
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Column sums of a rank-2 tensor, yielding a rank-1 tensor of width n.
    /// This is the bias-gradient reduction in dense/conv backward passes.
    pub fn sum_axis0(&self) -> Self {
        assert_eq!(self.shape.rank(), 2, "sum_axis0 requires rank 2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0; n];
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// True when any element is NaN or infinite. Training drivers use this to
    /// reject diverged client results before assimilation (the paper's
    /// validator step).
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .., {:.4}] n={})",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ctor_shape_check() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn ctor_rejects_bad_length() {
        Tensor::from_vec(vec![1.0], &[2, 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[4]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[4], 0.5).sum(), 2.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert!(approx_eq(&tt.transpose(), &t, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn blend_implements_eq1() {
        // W_s <- alpha W_s + (1 - alpha) W_c
        let mut ws = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let wc = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        ws.blend(0.95, 0.05, &wc);
        assert!(approx_eq(
            &ws,
            &Tensor::from_vec(vec![0.95, 0.05], &[2]),
            1e-7
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::ones(&[3]);
        a.axpy(-0.1, &g);
        a.axpy(-0.1, &g);
        assert!(approx_eq(&a, &Tensor::full(&[3], -0.2), 1e-7));
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[2, 2]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.sum_axis0().data(), &[4.0, -2.0]);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn argmax_ties_take_first() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
        t.data_mut()[1] = f32::INFINITY;
        assert!(t.has_non_finite());
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut s = NormalSampler::seed_from(42);
        let t = Tensor::he_normal(&[10_000], 50, &mut s);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 9_999.0;
        let expected = 2.0 / 50.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.1,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let r = t.clone().reshape(&[2, 6]);
        assert_eq!(r.dims(), &[2, 6]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn row_extracts_slice() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(t.row(1).data(), &[3.0, 4.0, 5.0]);
    }
}
