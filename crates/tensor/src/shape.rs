//! Dynamic tensor shapes.
//!
//! A [`Shape`] is an ordered list of dimension extents. All tensors in the
//! workspace are stored row-major (C order), so the last axis is contiguous.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`crate::Tensor`]: a small vector of dimension extents.
///
/// A rank-0 shape (no dims) denotes a scalar with exactly one element, which
/// keeps reductions like `sum()` composable.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of axis `i`. Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements. The last axis has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index. Panics on rank mismatch or an
    /// out-of-range coordinate (in debug builds).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (i, (&ix, &stride)) in index.iter().zip(&strides).enumerate() {
            debug_assert!(ix < self.0[i], "index {ix} out of range for axis {i}");
            off += ix * stride;
        }
        off
    }

    /// True when the two shapes describe matrices that can be multiplied
    /// (`self` is `[m, k]`, `other` is `[k, n]`).
    pub fn matmul_compatible(&self, other: &Shape) -> bool {
        self.rank() == 2 && other.rank() == 2 && self.dim(1) == other.dim(0)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_is_product() {
        assert_eq!(Shape::new(&[3, 4, 5]).numel(), 60);
        assert_eq!(Shape::new(&[7]).numel(), 7);
        assert_eq!(Shape::new(&[2, 0, 4]).numel(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn offset_panics_on_rank_mismatch() {
        Shape::new(&[2, 3]).offset(&[1]);
    }

    #[test]
    fn matmul_compat() {
        assert!(Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[2, 4])));
        assert!(!Shape::new(&[2, 3, 1]).matmul_compatible(&Shape::new(&[3, 4])));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
