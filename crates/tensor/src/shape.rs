//! Dynamic tensor shapes.
//!
//! A [`Shape`] is an ordered list of dimension extents. All tensors in the
//! workspace are stored row-major (C order), so the last axis is contiguous.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Highest tensor rank the workspace uses (`[batch, ch, h, w]` images).
pub const MAX_RANK: usize = 4;

/// The shape of a [`crate::Tensor`]: up to [`MAX_RANK`] dimension extents
/// stored inline, so constructing a tensor never heap-allocates for its
/// shape. This matters for the zero-allocation steady-state training loop,
/// where activations are rebuilt from recycled buffers every step.
///
/// A rank-0 shape (no dims) denotes a scalar with exactly one element, which
/// keeps reductions like `sum()` composable.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Builds a shape from dimension extents. Panics above [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds supported maximum {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Extent of axis `i`. Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims()[i]
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides, in elements. The last axis has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index. Panics on rank mismatch or an
    /// out-of-range coordinate (in debug builds).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank,
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank
        );
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.rank).rev() {
            debug_assert!(
                index[i] < self.dims[i],
                "index {} out of range for axis {i}",
                index[i]
            );
            off += index[i] * stride;
            stride *= self.dims[i];
        }
        off
    }

    /// True when the two shapes describe matrices that can be multiplied
    /// (`self` is `[m, k]`, `other` is `[k, n]`).
    pub fn matmul_compatible(&self, other: &Shape) -> bool {
        self.rank() == 2 && other.rank() == 2 && self.dim(1) == other.dim(0)
    }
}

// Hand-written serde: the pre-inline `Shape(Vec<usize>)` newtype serialized
// as its inner value (a JSON array of extents); these impls keep that wire
// format so existing checkpoints and report files stay readable.
impl Serialize for Shape {
    fn serialize(&self) -> Content {
        Content::Seq(
            self.dims()
                .iter()
                .map(|&d| Content::U64(d as u64))
                .collect(),
        )
    }
}

impl Deserialize for Shape {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Shape"))?;
        if seq.len() > MAX_RANK {
            return Err(DeError(format!(
                "shape rank {} exceeds supported maximum {MAX_RANK}",
                seq.len()
            )));
        }
        let mut dims = [0usize; MAX_RANK];
        for (slot, item) in dims.iter_mut().zip(seq) {
            *slot = match *item {
                Content::U64(v) => v as usize,
                Content::I64(v) if v >= 0 => v as usize,
                _ => return Err(DeError::expected("non-negative integer", "Shape")),
            };
        }
        Ok(Shape {
            dims,
            rank: seq.len(),
        })
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_is_product() {
        assert_eq!(Shape::new(&[3, 4, 5]).numel(), 60);
        assert_eq!(Shape::new(&[7]).numel(), 7);
        assert_eq!(Shape::new(&[2, 0, 4]).numel(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn offset_panics_on_rank_mismatch() {
        Shape::new(&[2, 3]).offset(&[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds supported maximum")]
    fn rank_above_max_is_rejected() {
        Shape::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn matmul_compat() {
        assert!(Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[2, 4])));
        assert!(!Shape::new(&[2, 3, 1]).matmul_compatible(&Shape::new(&[3, 4])));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn serde_roundtrip_keeps_seq_encoding() {
        let s = Shape::new(&[2, 3, 4]);
        let c = s.serialize();
        assert_eq!(
            c,
            Content::Seq(vec![Content::U64(2), Content::U64(3), Content::U64(4)]),
            "wire format must stay the plain array the old newtype emitted"
        );
        assert_eq!(Shape::deserialize(&c).unwrap(), s);
        let scalar = Shape::new(&[]);
        assert_eq!(Shape::deserialize(&scalar.serialize()).unwrap(), scalar);
    }
}
