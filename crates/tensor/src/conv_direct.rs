//! Direct (implicit-GEMM) kernels for 3×3 stride-1 convolution.
//!
//! The general conv path lowers to GEMM via [`crate::ops::im2col_into`],
//! which materializes every 3×3 patch as a row — a 9× blow-up of the input
//! that is pure memory traffic (written once by im2col, streamed once by
//! the GEMM's pack, then dead). For the 3×3 stride-1 blocks `small_cnn`
//! and `resnet_lite` are built from, the kernels here compute the same
//! sums straight from the image tensor: the "column matrix" exists only
//! implicitly, one L1-resident band at a time. im2col/col2im stay as the
//! general-case path (other kernel sizes, strides) and as the reference
//! the property tests compare against.
//!
//! ## Kernel structure
//!
//! * **forward** — each image is staged once into a zero-padded copy
//!   (`[ch, h+2p, w+2p]`, caller scratch), which makes *every* output
//!   column vectorizable: the AVX2 row kernel runs 8-pixel spans across
//!   the whole row, the final span overlapping the previous one when
//!   `ow % 8 != 0` (recomputed lanes produce identical bits and are
//!   skipped at write-back, so even the `Accumulate` epilogue is safe).
//!   An interior-only span would collapse to all-scalar at `w ≤ 8`.
//! * **backward/dK** — the GEMM `dyᵀ · cols` is tiled by *bands* of 32
//!   column rows: each band is materialized into L1-sized scratch, then a
//!   register tile (4 output channels × 16 patch columns) loads the
//!   running accumulator once, FMAs all band rows, and stores it back —
//!   instead of streaming the whole `out_ch × patch` accumulator through
//!   memory for every output pixel.
//! * **backward/dx** — per image, bands of 32 gradient-column rows are
//!   computed with a register tile (4 rows × 16 patch columns) against a
//!   zero-padded copy of the kernel, then scattered in col2im order.
//!
//! ## Bit-identity contract
//!
//! Every output element is produced by the **same fused-multiply-add chain
//! in the same order** as the im2col+GEMM route, so results are
//! *bit-identical*, not approximately equal — switching paths cannot
//! perturb a DST trajectory:
//!
//! * **forward** — `out[b][oc][oy][ox]` reduces over the patch index
//!   `p = (c*3 + ky)*3 + kx` ascending, exactly the GEMM's k-order for
//!   `cols · Kᵀ`. Padded taps are **not skipped**: they contribute
//!   `fma(0.0, k, acc)` via the staged image's literal zeros, just as the
//!   materialized column row contains a literal `0.0`.
//! * **backward/dx** — each column-row gradient `dcols[r][p]` reduces over
//!   `oc` ascending (the GEMM's k-order for `dy · K`; padded kernel
//!   columns only feed padded scratch columns that are never read back),
//!   then scatters onto the image in [`crate::ops::col2im_into`]'s exact
//!   iteration order.
//! * **backward/dK** — each `dK[oc][p]` reduces over the GEMM row index
//!   `(b, oy, ox)` ascending (the k-order of `dyᵀ · cols`): the register
//!   tile loads the running value, continues the chain through one band,
//!   stores it back, and the total is added to the existing gradient only
//!   once the full chain is done — matching the GEMM's `Accumulate`
//!   epilogue, which also adds a *finished* tile.
//!
//! AVX2 lanes compute the same bits as the scalar `mul_add` fallback
//! (IEEE-754 specifies one rounding for fused multiply-add), and epilogues
//! are applied by the same scalar code the GEMM's write-back uses, so
//! vectorization never enters the equality argument. The property tests
//! (`conv_direct_props.rs`) enforce all of this bitwise against the
//! im2col reference.
//!
//! ## Selection
//!
//! [`supports`] gates on geometry (3×3, stride 1, any padding);
//! [`enabled`] is a process-wide switch — default on, `VC_CONV_DIRECT=0`
//! disables, [`set_enabled`] overrides at runtime (used by `bench_train`
//! to time both paths and by tests to compare them).

use crate::ops::{ConvGeom, Epilogue, PAR_THRESHOLD};
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Output-channel block: each pass over an image row computes `OCB`
/// channels at once so every loaded input vector feeds 4 accumulators.
const OCB: usize = 4;

/// Rows per backward band: 32 column rows × a padded patch row fit in L1
/// for training-shaped channel counts, and give the register tiles a long
/// enough FMA run to amortize their accumulator load/store.
const BAND: usize = 32;

// 0 = follow the VC_CONV_DIRECT env default, 1 = forced on, 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("VC_CONV_DIRECT").as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Is the direct path currently selected? (Geometry still has to pass
/// [`supports`] — callers check both.)
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Forces the direct path on or off process-wide, overriding the
/// `VC_CONV_DIRECT` env default. Safe to flip at any time: both paths
/// produce bit-identical results, so a racing layer sees no difference.
pub fn set_enabled(on: bool) {
    FORCE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drops any [`set_enabled`] override, returning to the env default.
pub fn clear_forced() {
    FORCE.store(0, Ordering::Relaxed);
}

/// Geometry the direct kernels handle: 3×3, stride 1, any symmetric pad.
pub fn supports(geom: &ConvGeom) -> bool {
    geom.kh == 3 && geom.kw == 3 && geom.stride == 1
}

/// Patch rows in backward scratch are padded to a multiple of 16 floats so
/// the 16-wide register tiles never need a remainder loop; the pad columns
/// hold zeros and are never read back.
fn patch_pad(patch: usize) -> usize {
    patch.div_ceil(16) * 16
}

/// Scratch length (in floats) callers must provide to
/// [`conv3x3_forward_into`]: one cache-line-padded zero-padded image copy
/// per batch element so parallel images never share a line of scratch.
pub fn fwd_scratch_len(batch: usize, ch: usize, geom: ConvGeom) -> usize {
    batch * fwd_slot(ch, geom)
}

fn fwd_slot(ch: usize, geom: ConvGeom) -> usize {
    let (ph, pw) = (geom.h + 2 * geom.pad, geom.w + 2 * geom.pad);
    (ch * ph * pw).div_ceil(16) * 16 + 16
}

/// Scratch length (in floats) callers must provide to
/// [`conv3x3_backward_dx_into`]: a zero-padded kernel copy (shared,
/// read-only) plus one cache-line-padded band slot per image.
pub fn dx_scratch_len(batch: usize, ch: usize, out_ch: usize) -> usize {
    out_ch * patch_pad(ch * 9) + batch * dx_slot(ch, out_ch)
}

fn dx_slot(ch: usize, out_ch: usize) -> usize {
    let pp = patch_pad(ch * 9);
    (BAND * pp + BAND * out_ch).div_ceil(16) * 16 + 16
}

/// Scratch length (in floats) callers must provide to
/// [`conv3x3_backward_dk_into`]: a padded image copy, one column band, one
/// transposed dy band and the padded `out_ch × patch` accumulator.
pub fn dk_scratch_len(ch: usize, out_ch: usize, geom: ConvGeom) -> usize {
    let (ph, pw) = (geom.h + 2 * geom.pad, geom.w + 2 * geom.pad);
    let pp = patch_pad(ch * 9);
    ch * ph * pw + BAND * pp + BAND * out_ch + out_ch * pp
}

/// Per-call geometry bundle threaded through the kernels.
#[derive(Clone, Copy)]
struct Ctx {
    ch: usize,
    h: usize,
    w: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    patch: usize,
}

fn ctx_for(ch: usize, geom: ConvGeom) -> Ctx {
    Ctx {
        ch,
        h: geom.h,
        w: geom.w,
        pad: geom.pad,
        oh: geom.out_h(),
        ow: geom.out_w(),
        patch: ch * 9,
    }
}

#[inline(always)]
fn has_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Stages one image as a zero-padded copy `[ch, h+2p, w+2p]` — the literal
/// zeros around each plane are the same explicit zero operands the im2col
/// matrix materializes for padded taps.
fn pack_padded_image(x: &[f32], ctx: Ctx, dst: &mut [f32]) {
    let (ph, pw) = (ctx.h + 2 * ctx.pad, ctx.w + 2 * ctx.pad);
    dst[..ctx.ch * ph * pw].fill(0.0);
    for c in 0..ctx.ch {
        for y in 0..ctx.h {
            let src = &x[(c * ctx.h + y) * ctx.w..][..ctx.w];
            dst[c * ph * pw + (y + ctx.pad) * pw + ctx.pad..][..ctx.w].copy_from_slice(src);
        }
    }
}

/// Applies the GEMM epilogue to one finished accumulator value — the same
/// scalar expressions as `ops::write_back`, so fused bias/ReLU rounding and
/// NaN/sign behaviour are identical across paths by construction.
#[inline(always)]
fn apply_epi(o: &mut f32, v: f32, oc: usize, epi: Epilogue<'_>) {
    match epi {
        Epilogue::Store => *o = v,
        Epilogue::Accumulate => *o += v,
        Epilogue::Bias(bias) => *o = v + bias[oc],
        Epilogue::BiasRelu(bias) => *o = (v + bias[oc]).max(0.0),
    }
}

// ------------------------------------------------------------------ forward

/// Direct 3×3 stride-1 conv forward: `input [batch, ch, h, w]` ×
/// `kernel [out_ch, ch*9]` → `out [batch, out_ch, oh, ow]`, writing the
/// image layout directly (the im2col path needs a separate
/// rows→images permutation pass; this one doesn't). `scratch` must hold
/// [`fwd_scratch_len`]`(batch, ch, geom)` floats.
pub fn conv3x3_forward_into(
    input: &Tensor,
    kernel: &Tensor,
    geom: ConvGeom,
    out: &mut [f32],
    epi: Epilogue<'_>,
    scratch: &mut [f32],
) {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "conv3x3 expects [batch, ch, h, w]");
    let (batch, ch, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert!(supports(&geom), "conv3x3 geometry {geom:?}");
    assert_eq!((h, w), (geom.h, geom.w));
    geom.validate().expect("invalid conv geometry");
    let out_ch = kernel.dims()[0];
    let ctx = ctx_for(ch, geom);
    assert_eq!(kernel.dims()[1], ctx.patch, "kernel patch width");
    let plane = out_ch * ctx.oh * ctx.ow;
    assert_eq!(out.len(), batch * plane, "conv3x3 output buffer length");
    assert!(
        scratch.len() >= fwd_scratch_len(batch, ch, geom),
        "forward scratch length"
    );
    if out.is_empty() {
        return;
    }
    let x = input.data();
    let kd = kernel.data();
    let img_len = ch * h * w;
    let slot = fwd_slot(ch, geom);
    let base = scratch.as_mut_ptr() as usize;
    let run = |b: usize, dst: &mut [f32]| {
        // Safety: image b writes only its own line-padded scratch slot;
        // slots are disjoint and the scratch borrow outlives the blocking
        // parallel call.
        let pimg =
            unsafe { std::slice::from_raw_parts_mut((base as *mut f32).add(b * slot), slot) };
        fwd_image(
            &x[b * img_len..(b + 1) * img_len],
            kd,
            out_ch,
            ctx,
            dst,
            epi,
            pimg,
        );
    };
    if batch > 1 && out.len() >= PAR_THRESHOLD {
        out.par_chunks_mut(plane)
            .enumerate()
            .for_each(|(b, dst)| run(b, dst));
    } else {
        for (b, dst) in out.chunks_mut(plane).enumerate() {
            run(b, dst);
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal kernel plumbing
fn fwd_image(
    x: &[f32],
    kd: &[f32],
    out_ch: usize,
    ctx: Ctx,
    dst: &mut [f32],
    epi: Epilogue<'_>,
    pimg: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if has_fma() && ctx.ow >= 8 {
        pack_padded_image(x, ctx, pimg);
        let mut oc0 = 0;
        while oc0 < out_ch {
            let noc = OCB.min(out_ch - oc0);
            for oy in 0..ctx.oh {
                // SAFETY: AVX2+FMA presence checked by has_fma above.
                unsafe { fwd_row_avx2(pimg, kd, ctx, oy, oc0, noc, dst, epi) };
            }
            oc0 += OCB;
        }
        return;
    }
    let _ = pimg;
    let mut oc0 = 0;
    while oc0 < out_ch {
        let noc = OCB.min(out_ch - oc0);
        for oy in 0..ctx.oh {
            fwd_row_generic(x, kd, ctx, oy, oc0, noc, dst, epi);
        }
        oc0 += OCB;
    }
}

/// One output pixel, all `noc` channels of the block: the full
/// `p`-ascending FMA chain with explicit zeros for padded taps.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: pixel coordinates are scalars by design
fn fwd_px_scalar(
    x: &[f32],
    kd: &[f32],
    ctx: Ctx,
    oy: usize,
    ox: usize,
    oc0: usize,
    noc: usize,
) -> [f32; OCB] {
    let mut acc = [0.0f32; OCB];
    let iy0 = oy as isize - ctx.pad as isize;
    let ix0 = ox as isize - ctx.pad as isize;
    for c in 0..ctx.ch {
        let plane = &x[c * ctx.h * ctx.w..(c + 1) * ctx.h * ctx.w];
        for ky in 0..3 {
            let iy = iy0 + ky as isize;
            let row_ok = iy >= 0 && iy < ctx.h as isize;
            for kx in 0..3 {
                let ix = ix0 + kx as isize;
                let xv = if row_ok && ix >= 0 && ix < ctx.w as isize {
                    plane[iy as usize * ctx.w + ix as usize]
                } else {
                    0.0
                };
                let p = (c * 3 + ky) * 3 + kx;
                for (jj, a) in acc.iter_mut().enumerate().take(noc) {
                    *a = xv.mul_add(kd[(oc0 + jj) * ctx.patch + p], *a);
                }
            }
        }
    }
    acc
}

#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: pixel coordinates are scalars by design
fn fwd_write_px(
    dst: &mut [f32],
    ctx: Ctx,
    oy: usize,
    ox: usize,
    oc0: usize,
    noc: usize,
    acc: &[f32; OCB],
    epi: Epilogue<'_>,
) {
    for jj in 0..noc {
        let o = &mut dst[((oc0 + jj) * ctx.oh + oy) * ctx.ow + ox];
        apply_epi(o, acc[jj], oc0 + jj, epi);
    }
}

/// Portable whole-row kernel (also the narrow-row fallback, `ow < 8`, for
/// the AVX2 path).
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: pixel coordinates are scalars by design
fn fwd_row_generic(
    x: &[f32],
    kd: &[f32],
    ctx: Ctx,
    oy: usize,
    oc0: usize,
    noc: usize,
    dst: &mut [f32],
    epi: Epilogue<'_>,
) {
    for ox in 0..ctx.ow {
        let acc = fwd_px_scalar(x, kd, ctx, oy, ox, oc0, noc);
        fwd_write_px(dst, ctx, oy, ox, oc0, noc, &acc, epi);
    }
}

/// AVX2 row kernel over the padded image: 8 output pixels × `noc` channels
/// per span, spans covering the whole row. Every tap is an in-bounds
/// unaligned load (zeros come from the staging pad), so there is no scalar
/// edge handling at all; when `ow % 8 != 0` the final span re-computes a
/// few lanes of the previous one (identical bits) and skips them at
/// write-back so no element is written twice.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: pixel coordinates are scalars by design
#[allow(clippy::needless_range_loop)] // lane index l spans all four lane arrays at once
unsafe fn fwd_row_avx2(
    pimg: &[f32],
    kd: &[f32],
    ctx: Ctx,
    oy: usize,
    oc0: usize,
    noc: usize,
    dst: &mut [f32],
    epi: Epilogue<'_>,
) {
    use std::arch::x86_64::*;
    let pw = ctx.w + 2 * ctx.pad;
    let ph = ctx.h + 2 * ctx.pad;
    let plane = ph * pw;
    debug_assert!(ctx.ow >= 8);
    let mut ox0 = 0usize;
    let mut done = 0usize; // pixels [0, done) already written
    loop {
        let mut acc = [_mm256_setzero_ps(); OCB];
        for c in 0..ctx.ch {
            // Padded row oy+ky holds input row oy+ky-pad; padded column
            // ox+kx holds input column ox+kx-pad — all taps in-bounds.
            let base = pimg.as_ptr().add(c * plane + oy * pw + ox0);
            for ky in 0..3 {
                let row = base.add(ky * pw);
                for kx in 0..3 {
                    let xv = _mm256_loadu_ps(row.add(kx));
                    let p = (c * 3 + ky) * 3 + kx;
                    for (jj, a) in acc.iter_mut().enumerate().take(noc) {
                        let kv = _mm256_broadcast_ss(&kd[(oc0 + jj) * ctx.patch + p]);
                        *a = _mm256_fmadd_ps(xv, kv, *a);
                    }
                }
            }
        }
        // Scalar write-back: lanes go through the exact same epilogue code
        // as every other path (no vector max/add variants to reason about).
        let mut lanes = [[0.0f32; 8]; OCB];
        for (jj, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(lanes[jj].as_mut_ptr(), *a);
        }
        for l in (done - ox0)..8 {
            let px = [lanes[0][l], lanes[1][l], lanes[2][l], lanes[3][l]];
            fwd_write_px(dst, ctx, oy, ox0 + l, oc0, noc, &px, epi);
        }
        done = ox0 + 8;
        if done >= ctx.ow {
            break;
        }
        // Next span: step by 8, or back up so the last span ends exactly
        // at the row edge (overlapped lanes are skipped above).
        ox0 = if ox0 + 16 <= ctx.ow {
            ox0 + 8
        } else {
            ctx.ow - 8
        };
    }
}

// ---------------------------------------------------------------- backward

/// Materializes one im2col row (explicit zeros for padded taps) straight
/// from the unpadded image — the scalar dK fallback's only patch storage.
#[inline(always)]
fn fill_patch_row(x: &[f32], ctx: Ctx, oy: usize, ox: usize, dst: &mut [f32]) {
    let iy0 = oy as isize - ctx.pad as isize;
    let ix0 = ox as isize - ctx.pad as isize;
    let mut p = 0;
    for c in 0..ctx.ch {
        let plane = &x[c * ctx.h * ctx.w..(c + 1) * ctx.h * ctx.w];
        for ky in 0..3 {
            let iy = iy0 + ky as isize;
            let row_ok = iy >= 0 && iy < ctx.h as isize;
            for kx in 0..3 {
                let ix = ix0 + kx as isize;
                dst[p] = if row_ok && ix >= 0 && ix < ctx.w as isize {
                    plane[iy as usize * ctx.w + ix as usize]
                } else {
                    0.0
                };
                p += 1;
            }
        }
    }
}

/// Same row, materialized branch-free from a padded image: each `(c, ky)`
/// pair is three consecutive floats.
#[inline(always)]
fn fill_patch_row_padded(
    pimg: &[f32],
    ctx: Ctx,
    ph: usize,
    pw: usize,
    oy: usize,
    ox: usize,
    dst: &mut [f32],
) {
    let mut p = 0;
    for c in 0..ctx.ch {
        let base = c * ph * pw + oy * pw + ox;
        for ky in 0..3 {
            dst[p..p + 3].copy_from_slice(&pimg[base + ky * pw..][..3]);
            p += 3;
        }
    }
}

/// Scatters one gradient column row onto the image in
/// [`crate::ops::col2im_into`]'s exact iteration order (`c, ky, kx`
/// ascending; out-of-bounds taps have no destination).
#[inline(always)]
fn scatter_row(img: &mut [f32], ctx: Ctx, oy: usize, ox: usize, drow: &[f32]) {
    let iy0 = oy as isize - ctx.pad as isize;
    let ix0 = ox as isize - ctx.pad as isize;
    let mut p = 0;
    for c in 0..ctx.ch {
        for ky in 0..3 {
            let iy = iy0 + ky as isize;
            let row_ok = iy >= 0 && iy < ctx.h as isize;
            for kx in 0..3 {
                let ix = ix0 + kx as isize;
                if row_ok && ix >= 0 && ix < ctx.w as isize {
                    img[(c * ctx.h + iy as usize) * ctx.w + ix as usize] += drow[p];
                }
                p += 1;
            }
        }
    }
}

/// Gathers one band of `dy` into row-major `[nb, out_ch]` order: within an
/// image, GEMM row `r` *is* output pixel `r`, so this is a strided
/// transpose of the `[out_ch, oh*ow]` plane.
#[inline(always)]
fn gather_dy_band(dyp: &[f32], ohw: usize, out_ch: usize, r0: usize, nb: usize, dyb: &mut [f32]) {
    for (ri, row) in dyb.chunks_mut(out_ch).take(nb).enumerate() {
        for (oc, v) in row.iter_mut().enumerate() {
            *v = dyp[oc * ohw + r0 + ri];
        }
    }
}

/// Direct input-gradient: `dy [batch, out_ch, oh, ow]` ×
/// `kernel [out_ch, ch*9]` → `dx [batch, ch, h, w]`, fusing the
/// `dy · K` GEMM with the col2im scatter so the `[rows, ch*9]` gradient
/// column matrix is never materialized — only one 32-row band per image
/// lives in scratch. `scratch` must hold
/// [`dx_scratch_len`]`(batch, ch, out_ch)` floats.
pub fn conv3x3_backward_dx_into(
    dy: &Tensor,
    kernel: &Tensor,
    ch: usize,
    geom: ConvGeom,
    dx: &mut [f32],
    scratch: &mut [f32],
) {
    let dims = dy.dims();
    assert_eq!(dims.len(), 4, "conv3x3 dy expects [batch, out_ch, oh, ow]");
    let (batch, out_ch) = (dims[0], dims[1]);
    assert!(supports(&geom), "conv3x3 geometry {geom:?}");
    let ctx = ctx_for(ch, geom);
    assert_eq!((dims[2], dims[3]), (ctx.oh, ctx.ow));
    assert_eq!(kernel.dims(), &[out_ch, ctx.patch], "kernel dims");
    let img_len = ch * ctx.h * ctx.w;
    assert_eq!(dx.len(), batch * img_len, "dx buffer length");
    assert!(
        scratch.len() >= dx_scratch_len(batch, ch, out_ch),
        "dx scratch length"
    );
    if dx.is_empty() {
        return;
    }
    let dyd = dy.data();
    let kd = kernel.data();
    let dy_plane = out_ch * ctx.oh * ctx.ow;
    let pp = patch_pad(ctx.patch);
    let use_fma = has_fma();
    let (kpad, slots) = scratch.split_at_mut(out_ch * pp);
    if use_fma {
        // Pad the kernel once, up front: the band tile loads 16-wide even
        // past `patch`, and the zero columns only ever feed scratch
        // columns that are never read back.
        kpad.fill(0.0);
        for oc in 0..out_ch {
            kpad[oc * pp..][..ctx.patch].copy_from_slice(&kd[oc * ctx.patch..][..ctx.patch]);
        }
    }
    let kpad = &*kpad;
    let slot = dx_slot(ch, out_ch);
    let base = slots.as_mut_ptr() as usize;
    let run = |b: usize, img: &mut [f32]| {
        // Safety: image b writes only its own line-padded scratch slot;
        // slots are disjoint and the scratch borrow outlives the blocking
        // parallel call.
        let s = unsafe { std::slice::from_raw_parts_mut((base as *mut f32).add(b * slot), slot) };
        let dyp = &dyd[b * dy_plane..(b + 1) * dy_plane];
        if use_fma {
            let (dcols, dyb) = s.split_at_mut(BAND * pp);
            dx_image_banded(
                dyp,
                kpad,
                out_ch,
                ctx,
                pp,
                img,
                dcols,
                &mut dyb[..BAND * out_ch],
            );
        } else {
            dx_image_generic(dyp, kd, out_ch, ctx, img, &mut s[..ctx.patch]);
        }
    };
    // Same serial-vs-parallel policy as col2im_into over the same shapes.
    if batch > 1 && dx.len() >= PAR_THRESHOLD {
        out_par(dx, img_len, run);
    } else {
        for (b, img) in dx.chunks_mut(img_len).enumerate() {
            run(b, img);
        }
    }
}

/// Helper so the closure capture for the parallel scatter stays tidy.
fn out_par(out: &mut [f32], chunk: usize, run: impl Fn(usize, &mut [f32]) + Sync) {
    out.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(b, dst)| run(b, dst));
}

/// Banded dx for one image: compute a band of gradient column rows with
/// the register tile, then scatter them in global row order.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing
fn dx_image_banded(
    dyp: &[f32],
    kpad: &[f32],
    out_ch: usize,
    ctx: Ctx,
    pp: usize,
    img: &mut [f32],
    dcols: &mut [f32],
    dyb: &mut [f32],
) {
    img.fill(0.0);
    let ohw = ctx.oh * ctx.ow;
    let mut r0 = 0;
    while r0 < ohw {
        let nb = BAND.min(ohw - r0);
        gather_dy_band(dyp, ohw, out_ch, r0, nb, dyb);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers reach this path only when has_fma() is true.
        unsafe {
            dx_band_avx2(dyb, kpad, nb, out_ch, pp, dcols)
        };
        for ri in 0..nb {
            let r = r0 + ri;
            scatter_row(
                img,
                ctx,
                r / ctx.ow,
                r % ctx.ow,
                &dcols[ri * pp..][..ctx.patch],
            );
        }
        r0 += nb;
    }
}

/// Portable dx for one image — per-pixel `drow` accumulation, the original
/// fused formulation (identical chain: `oc` ascending, then col2im order).
fn dx_image_generic(
    dyp: &[f32],
    kd: &[f32],
    out_ch: usize,
    ctx: Ctx,
    img: &mut [f32],
    drow: &mut [f32],
) {
    img.fill(0.0);
    for oy in 0..ctx.oh {
        for ox in 0..ctx.ow {
            drow.fill(0.0);
            for oc in 0..out_ch {
                let dyv = dyp[(oc * ctx.oh + oy) * ctx.ow + ox];
                for (d, &k) in drow
                    .iter_mut()
                    .zip(&kd[oc * ctx.patch..(oc + 1) * ctx.patch])
                {
                    *d = dyv.mul_add(k, *d);
                }
            }
            scatter_row(img, ctx, oy, ox, drow);
        }
    }
}

/// Band tile for dx: 4 column rows × 16 patch columns held in registers,
/// reducing over `oc` ascending. Each `dcols[r][p]` is one contiguous FMA
/// chain from zero — the GEMM's k-order for `dy_rows · K`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dx_band_avx2(
    dyb: &[f32],
    kpad: &[f32],
    nb: usize,
    out_ch: usize,
    pp: usize,
    dcols: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut ri = 0;
    while ri + 4 <= nb {
        let mut p0 = 0;
        while p0 < pp {
            let mut t = [[_mm256_setzero_ps(); 2]; 4];
            for oc in 0..out_ch {
                let k = kpad.as_ptr().add(oc * pp + p0);
                let k0 = _mm256_loadu_ps(k);
                let k1 = _mm256_loadu_ps(k.add(8));
                for (q, tq) in t.iter_mut().enumerate() {
                    let dv = _mm256_broadcast_ss(&dyb[(ri + q) * out_ch + oc]);
                    tq[0] = _mm256_fmadd_ps(k0, dv, tq[0]);
                    tq[1] = _mm256_fmadd_ps(k1, dv, tq[1]);
                }
            }
            for (q, tq) in t.iter().enumerate() {
                let d = dcols.as_mut_ptr().add((ri + q) * pp + p0);
                _mm256_storeu_ps(d, tq[0]);
                _mm256_storeu_ps(d.add(8), tq[1]);
            }
            p0 += 16;
        }
        ri += 4;
    }
    while ri < nb {
        let mut p0 = 0;
        while p0 < pp {
            let mut t0 = _mm256_setzero_ps();
            let mut t1 = _mm256_setzero_ps();
            for oc in 0..out_ch {
                let k = kpad.as_ptr().add(oc * pp + p0);
                let dv = _mm256_broadcast_ss(&dyb[ri * out_ch + oc]);
                t0 = _mm256_fmadd_ps(_mm256_loadu_ps(k), dv, t0);
                t1 = _mm256_fmadd_ps(_mm256_loadu_ps(k.add(8)), dv, t1);
            }
            let d = dcols.as_mut_ptr().add(ri * pp + p0);
            _mm256_storeu_ps(d, t0);
            _mm256_storeu_ps(d.add(8), t1);
            p0 += 16;
        }
        ri += 1;
    }
}

/// Direct weight-gradient: `dkernel [out_ch, ch*9] += dyᵀ · cols`, reading
/// patches straight from `input` — one 32-row column band at a time in
/// L1-sized scratch, versus the whole `[rows, ch*9]` matrix the im2col
/// path keeps alive. The padded accumulator holds the complete reduction
/// before it is added to `dkernel`, matching the GEMM's `Accumulate`
/// epilogue, which also adds only finished tiles. `scratch` must hold
/// [`dk_scratch_len`]`(ch, out_ch, geom)` floats.
///
/// Serial by design: for training-shaped problems `out_ch ≤ 64`, the GEMM
/// this replaces had at most one row band in flight, so there is no
/// parallelism to lose.
pub fn conv3x3_backward_dk_into(
    dy: &Tensor,
    input: &Tensor,
    geom: ConvGeom,
    dkernel: &mut [f32],
    scratch: &mut [f32],
) {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "conv3x3 expects [batch, ch, h, w]");
    let (batch, ch) = (dims[0], dims[1]);
    assert!(supports(&geom), "conv3x3 geometry {geom:?}");
    assert_eq!((dims[2], dims[3]), (geom.h, geom.w));
    let ctx = ctx_for(ch, geom);
    let out_ch = dy.dims()[1];
    assert_eq!(dy.dims(), &[batch, out_ch, ctx.oh, ctx.ow], "dy dims");
    assert_eq!(dkernel.len(), out_ch * ctx.patch, "dkernel length");
    assert!(
        scratch.len() >= dk_scratch_len(ch, out_ch, geom),
        "dk scratch length"
    );
    let (ph, pw) = (ctx.h + 2 * ctx.pad, ctx.w + 2 * ctx.pad);
    let pp = patch_pad(ctx.patch);
    let (pimg, rest) = scratch.split_at_mut(ch * ph * pw);
    let (band, rest) = rest.split_at_mut(BAND * pp);
    let (dyb, acc) = rest.split_at_mut(BAND * out_ch);
    let acc = &mut acc[..out_ch * pp];
    acc.fill(0.0);
    let xd = input.data();
    let dyd = dy.data();
    let img_len = ch * ctx.h * ctx.w;
    let ohw = ctx.oh * ctx.ow;
    let dy_plane = out_ch * ohw;
    let use_fma = has_fma();
    for b in 0..batch {
        let x = &xd[b * img_len..(b + 1) * img_len];
        let dyp = &dyd[b * dy_plane..(b + 1) * dy_plane];
        if use_fma {
            pack_padded_image(x, ctx, pimg);
            let mut r0 = 0;
            while r0 < ohw {
                let nb = BAND.min(ohw - r0);
                for ri in 0..nb {
                    let r = r0 + ri;
                    let row = &mut band[ri * pp..][..pp];
                    fill_patch_row_padded(pimg, ctx, ph, pw, r / ctx.ow, r % ctx.ow, row);
                    row[ctx.patch..].fill(0.0);
                }
                gather_dy_band(dyp, ohw, out_ch, r0, nb, dyb);
                #[cfg(target_arch = "x86_64")]
                // SAFETY: use_fma is true only when AVX2+FMA are present.
                unsafe {
                    dk_band_avx2(band, dyb, nb, out_ch, pp, acc)
                };
                r0 += nb;
            }
        } else {
            // Portable fallback: same chain, one patch row at a time.
            let patch_row = &mut band[..ctx.patch];
            for oy in 0..ctx.oh {
                for ox in 0..ctx.ow {
                    fill_patch_row(x, ctx, oy, ox, patch_row);
                    for oc in 0..out_ch {
                        let dyv = dyp[(oc * ctx.oh + oy) * ctx.ow + ox];
                        for (a, &xv) in acc[oc * pp..][..ctx.patch].iter_mut().zip(&*patch_row) {
                            *a = dyv.mul_add(xv, *a);
                        }
                    }
                }
            }
        }
    }
    for oc in 0..out_ch {
        let arow = &acc[oc * pp..][..ctx.patch];
        for (d, &a) in dkernel[oc * ctx.patch..][..ctx.patch].iter_mut().zip(arow) {
            *d += a;
        }
    }
}

/// Band tile for dK: 4 output channels × 16 patch columns held in
/// registers; the running accumulator is loaded once per band, continued
/// through all band rows (`r` ascending — the global GEMM k-order), and
/// stored back.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dk_band_avx2(
    band: &[f32],
    dyb: &[f32],
    nb: usize,
    out_ch: usize,
    pp: usize,
    acc: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut oc0 = 0;
    while oc0 < out_ch {
        let noc = OCB.min(out_ch - oc0);
        let mut p0 = 0;
        while p0 < pp {
            let mut t = [[_mm256_setzero_ps(); 2]; OCB];
            for (jj, tj) in t.iter_mut().enumerate().take(noc) {
                let a = acc.as_ptr().add((oc0 + jj) * pp + p0);
                tj[0] = _mm256_loadu_ps(a);
                tj[1] = _mm256_loadu_ps(a.add(8));
            }
            for ri in 0..nb {
                let x = band.as_ptr().add(ri * pp + p0);
                let x0 = _mm256_loadu_ps(x);
                let x1 = _mm256_loadu_ps(x.add(8));
                for (jj, tj) in t.iter_mut().enumerate().take(noc) {
                    let dv = _mm256_broadcast_ss(&dyb[ri * out_ch + oc0 + jj]);
                    tj[0] = _mm256_fmadd_ps(x0, dv, tj[0]);
                    tj[1] = _mm256_fmadd_ps(x1, dv, tj[1]);
                }
            }
            for (jj, tj) in t.iter().enumerate().take(noc) {
                let a = acc.as_mut_ptr().add((oc0 + jj) * pp + p0);
                _mm256_storeu_ps(a, tj[0]);
                _mm256_storeu_ps(a.add(8), tj[1]);
            }
            p0 += 16;
        }
        oc0 += OCB;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supports_gates_on_geometry() {
        let g3 = ConvGeom {
            h: 8,
            w: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert!(supports(&g3));
        assert!(!supports(&ConvGeom { stride: 2, ..g3 }));
        assert!(!supports(&ConvGeom { kh: 1, kw: 1, ..g3 }));
        assert!(!supports(&ConvGeom { kw: 5, ..g3 }));
    }

    #[test]
    fn toggle_overrides_and_clears() {
        let initial = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        clear_forced();
        assert_eq!(enabled(), initial);
    }

    #[test]
    fn scratch_slots_are_line_padded() {
        // Adjacent per-image slots must be ≥ one cache line apart even for
        // the smallest shapes, so parallel images never false-share.
        let g = ConvGeom {
            h: 1,
            w: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert!(fwd_slot(1, g) * 4 >= 9 * 4 + 64);
        assert_eq!(fwd_scratch_len(3, 2, g), 3 * fwd_slot(2, g));
        assert!(dx_slot(1, 1) * 4 >= (BAND * 16 + BAND) * 4 + 64);
        assert_eq!(
            dx_scratch_len(3, 2, 5),
            5 * patch_pad(18) + 3 * dx_slot(2, 5)
        );
    }

    #[test]
    fn patch_pad_is_16_aligned_cover() {
        assert_eq!(patch_pad(9), 16);
        assert_eq!(patch_pad(16), 16);
        assert_eq!(patch_pad(144), 144);
        for p in 1..300 {
            assert!(patch_pad(p) >= p && patch_pad(p).is_multiple_of(16));
        }
    }
}
