//! Binary codec for parameter vectors.
//!
//! The paper ships model parameters between clients and the server as
//! compressed `.h5` files (21.2 MB for the 4.97 M-parameter ResNetV2). We
//! encode parameter vectors as little-endian `f32` blobs with a small header;
//! the resulting byte length is what `vc-simnet` charges against the
//! instance-bandwidth model, and the blob itself is the value stored in
//! `vc-kvstore` (a Redis value / MySQL LONGBLOB analog).

use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag identifying a parameter blob (guards against feeding arbitrary
/// bytes to the decoder).
const MAGIC: u32 = 0x5643_5031; // "VCP1"

/// Errors produced when decoding a parameter blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob is shorter than its header claims.
    Truncated { expected: usize, got: usize },
    /// The magic tag did not match.
    BadMagic(u32),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { expected, got } => {
                write!(f, "blob truncated: expected {expected} bytes, got {got}")
            }
            CodecError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a flat `f32` slice into a framed little-endian blob.
pub fn encode_f32s(values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + values.len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(values.len() as u64);
    for &v in values {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a blob produced by [`encode_f32s`].
pub fn decode_f32s(blob: &[u8]) -> Result<Vec<f32>, CodecError> {
    let mut out = Vec::new();
    decode_f32s_into(blob, &mut out)?;
    Ok(out)
}

/// Decodes into a caller-owned buffer, reusing its capacity: the hot fetch
/// path decodes every parameter read, and with a warm `out` this performs
/// no heap allocation at all. `out` is cleared first; on error it is left
/// empty.
pub fn decode_f32s_into(mut blob: &[u8], out: &mut Vec<f32>) -> Result<(), CodecError> {
    out.clear();
    if blob.len() < 12 {
        return Err(CodecError::Truncated {
            expected: 12,
            got: blob.len(),
        });
    }
    let magic = blob.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let n = blob.get_u64_le() as usize;
    if blob.len() < n * 4 {
        return Err(CodecError::Truncated {
            expected: 12 + n * 4,
            got: 12 + blob.len(),
        });
    }
    out.reserve(n);
    for _ in 0..n {
        out.push(blob.get_f32_le());
    }
    Ok(())
}

/// Encodes a tensor's data (shape is carried out-of-band by the model spec,
/// exactly as the paper carries architecture in a separate `.json` file).
pub fn encode_tensor(t: &Tensor) -> Bytes {
    encode_f32s(t.data())
}

/// Size in bytes of an encoded parameter vector of `n` values.
pub fn encoded_len(n: usize) -> usize {
    12 + 4 * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let vals = vec![0.0, -1.5, 3.25, f32::MIN_POSITIVE, 1e30];
        let blob = encode_f32s(&vals);
        assert_eq!(decode_f32s(&blob).unwrap(), vals);
    }

    #[test]
    fn roundtrip_empty() {
        let blob = encode_f32s(&[]);
        assert_eq!(decode_f32s(&blob).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn encoded_len_matches() {
        let vals = vec![1.0; 100];
        assert_eq!(encode_f32s(&vals).len(), encoded_len(100));
    }

    #[test]
    fn decode_into_reuses_capacity_and_clears_on_error() {
        let blob = encode_f32s(&[1.0, 2.0, 3.0]);
        let mut out = Vec::with_capacity(16);
        decode_f32s_into(&blob, &mut out).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        let ptr = out.as_ptr();
        decode_f32s_into(&blob, &mut out).unwrap();
        assert_eq!(out.as_ptr(), ptr, "warm decode must not reallocate");
        assert!(decode_f32s_into(&blob[..5], &mut out).is_err());
        assert!(out.is_empty(), "error leaves the buffer empty");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = encode_f32s(&[1.0]).to_vec();
        blob[0] ^= 0xff;
        assert!(matches!(decode_f32s(&blob), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn rejects_truncation() {
        let blob = encode_f32s(&[1.0, 2.0, 3.0]);
        let cut = &blob[..blob.len() - 2];
        assert!(matches!(
            decode_f32s(cut),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(
            decode_f32s(&blob[..5]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn paper_scale_blob_size() {
        // The paper's parameter file holds 4,972,746 parameters; our framed
        // f32 encoding of that vector is ~19 MB, the same order as the
        // paper's 21.2 MB compressed .h5 file.
        let bytes = encoded_len(4_972_746);
        assert!(bytes > 18 << 20 && bytes < 22 << 20, "{bytes}");
    }

    #[test]
    fn nan_and_inf_survive_roundtrip() {
        let vals = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let got = decode_f32s(&encode_f32s(&vals)).unwrap();
        assert!(got[0].is_nan());
        assert_eq!(got[1], f32::INFINITY);
        assert_eq!(got[2], f32::NEG_INFINITY);
    }
}
