//! Seeded Gaussian sampling.
//!
//! `rand` 0.8 ships only uniform distributions in the base crate; rather than
//! pull in `rand_distr`, we implement the Box–Muller transform once here and
//! reuse it across the workspace (He-normal init in `vc-nn`, noise in
//! `vc-data`, latency jitter in `vc-simnet` takes its own copy of the same
//! math through this type).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic `N(0, 1)` sampler built on a seeded [`StdRng`] using the
/// Box–Muller transform. Generates values in pairs and caches the spare.
pub struct NormalSampler {
    rng: StdRng,
    spare: Option<f32>,
}

impl NormalSampler {
    /// Builds a sampler from a 64-bit seed. The same seed always yields the
    /// same stream, which keeps every experiment in the repo reproducible.
    pub fn seed_from(seed: u64) -> Self {
        NormalSampler {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Wraps an existing RNG (used when one seed must drive several streams).
    pub fn from_rng(rng: StdRng) -> Self {
        NormalSampler { rng, spare: None }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f32 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - self.rng.gen::<f32>();
        let u2: f32 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a sample from `N(mean, std^2)`.
    pub fn sample_with(&mut self, mean: f32, std: f32) -> f32 {
        self.sample() * std + mean
    }

    /// Access to the underlying uniform RNG for mixed workloads.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = NormalSampler::seed_from(7);
        let mut b = NormalSampler::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NormalSampler::seed_from(1);
        let mut b = NormalSampler::seed_from(2);
        let same = (0..32).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 4);
    }

    #[test]
    fn moments_match_standard_normal() {
        let mut s = NormalSampler::seed_from(123);
        let n = 100_000;
        let xs: Vec<f32> = (0..n).map(|_| s.sample()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / (n - 1) as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn all_samples_finite() {
        let mut s = NormalSampler::seed_from(99);
        assert!((0..10_000).all(|_| s.sample().is_finite()));
    }

    #[test]
    fn sample_with_scales_and_shifts() {
        let mut s = NormalSampler::seed_from(5);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| s.sample_with(3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }
}
