//! # vc-tensor
//!
//! Dense `f32` tensor primitives for the `vc-dl` workspace.
//!
//! This crate is the lowest layer of the from-scratch deep-learning substrate
//! used to reproduce *Distributed Deep Learning Using Volunteer Computing-Like
//! Paradigm* (Atre, Jha, Rao; 2021). It provides:
//!
//! * [`Tensor`] — an owned, contiguous, row-major `f32` tensor with a dynamic
//!   shape, elementwise arithmetic, reductions and broadcasting-by-row.
//! * [`ops`] — rayon-parallel matrix multiplication and the im2col/col2im
//!   transforms that back the convolution layers in `vc-nn`.
//! * [`conv_direct`] — implicit-GEMM 3×3 stride-1 conv kernels that skip
//!   im2col materialization, bit-identical to the im2col+GEMM route.
//! * [`rng`] — seeded Gaussian sampling (Box–Muller) used for He-normal
//!   parameter initialization, mirroring the paper's initializer.
//! * [`codec`] — a compact binary encoding of parameter vectors, standing in
//!   for the paper's compressed `.h5` parameter files (21.2 MB for the
//!   ResNetV2 model); byte sizes from this codec drive the network-transfer
//!   model in `vc-simnet`.
//! * [`quant`] — quantize/dequantize kernels (f16 conversion, symmetric
//!   int8, top-k selection) behind `vc-ps`'s lossy update codecs.
//!
//! The crate deliberately supports only `f32`: every system in the paper
//! (TensorFlow training, Redis parameter blobs) operates on single-precision
//! weights.

pub mod codec;
pub mod conv_direct;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use codec::{decode_f32s, encode_f32s};
pub use rng::NormalSampler;
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Absolute tolerance used by the test suites across the workspace when
/// comparing floating-point tensors produced by mathematically-equivalent
/// routes (e.g. serial vs rayon-parallel matmul).
pub const TEST_EPS: f32 = 1e-4;

/// Returns true when `a` and `b` differ by at most `eps` in every element and
/// agree in shape. Used pervasively by tests; exposed so downstream crates'
/// tests can reuse it.
pub fn approx_eq(a: &Tensor, b: &Tensor, eps: f32) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= eps || (x.is_nan() && y.is_nan()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_detects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(!approx_eq(&a, &b, 1.0));
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 5e-5, 2.0], &[2]);
        assert!(approx_eq(&a, &b, TEST_EPS));
        assert!(!approx_eq(&a, &b, 1e-6));
    }
}
