//! Blocked, pool-parallel linear algebra and convolution transforms.
//!
//! The hot kernels of the DL substrate live here. All three matmul variants
//! route through one cache-blocked GEMM in the GotoBLAS style:
//!
//! * **B is packed** once per call into zero-padded column panels of
//!   [`NR`] columns, k-major, so the microkernel streams it linearly.
//! * **A is packed** per 4-row quad into a `[k][`[`MR`]`]` micro-panel, so
//!   packing costs the same whether A is given row-major ([`matmul`]) or
//!   transposed ([`matmul_at_b`]). Each parallel row band packs into its
//!   own cache-line-separated slot of a scratch arena owned by the
//!   *submitting* thread (see [`gemm`]): worker threads never allocate, and
//!   two bands never share a line of pack scratch.
//! * The **microkernel** keeps an `MR × NR` register accumulator tile and
//!   reduces over `k` in fixed ascending order with fused multiply-adds —
//!   the same order and rounding the scalar reference uses — so results are
//!   **byte-identical** to [`matmul_naive`] and run-to-run deterministic
//!   under any thread count (each output element is one sequential fused
//!   `f32` chain; threads only decide *which* disjoint rows they produce,
//!   never the order within a sum). On x86-64 with AVX2+FMA — detected at
//!   runtime, no special build flags — the tile is computed with 256-bit
//!   `vfmadd` intrinsics; elsewhere a portable `f32::mul_add` loop computes
//!   the identical bits. That invariant is what DST byte-identity rests on.
//! * An [`Epilogue`] is applied at accumulator write-back: plain store,
//!   accumulate (`+=`, for weight-gradient accumulation without a temp
//!   tensor), fused bias add, or fused bias+ReLU — used by `vc_nn` dense
//!   and conv forward passes so the bias/activation never costs an extra
//!   pass over the output.
//!
//! The previous kernels special-cased `a[i][k] == 0.0` to skip work; on the
//! dense activations this codebase produces, that branch mispredicts and
//! defeats vectorization (see `bench_train`'s legacy-vs-new numbers), so
//! the blocked inner loops are branch-free.
//!
//! Parallelism is over disjoint row bands of the output via the persistent
//! worker pool in the vendored `rayon` shim; `matmul_at_b` (the
//! weight-gradient path, previously serial) parallelizes the same way
//! because packing makes its transposed A layout a non-issue. The band
//! height adapts to the thread cap ([`row_block_for`]): at 1 thread it is
//! the cache-friendly [`ROW_BLOCK`], at higher caps it shrinks so every
//! thread sees several bands — the first `VC_THREADS` sweep showed the
//! fixed 64-row band leaving most of an 8-thread pool idle on the 128–512
//! row matrices training actually produces (m=256 is just 4 bands).
//!
//! [`im2col`] / [`col2im`] lower 2-D convolution to matmul; the `_into`
//! variants of every kernel write into caller-provided buffers so the
//! training workspace can run the whole step without heap allocation.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Threshold (in output elements) below which kernels run serially; farming
/// tiny matrices out to the pool costs more than the multiply. Shared with
/// the direct conv path (`conv_direct`) so both lowerings make the same
/// serial-vs-parallel choice at a given problem size.
pub(crate) const PAR_THRESHOLD: usize = 64 * 64;

/// Rows per register tile of the microkernel.
const MR: usize = 4;
/// Columns per register tile / packed B panel width: two 8-lane vectors per
/// row on AVX2, giving the kernel 8 independent FMA chains — enough to hide
/// the FMA latency and saturate both FMA ports.
const NR: usize = 16;
/// Output rows per parallel task at thread cap 1 (and the upper bound at
/// any cap — taller bands stop paying off once A rows stream from L2).
const ROW_BLOCK: usize = 64;
/// Row bands per thread the parallel driver aims for: enough slack for the
/// atomic-cursor self-balancing to absorb a slow thread, small enough that
/// per-band dispatch overhead stays negligible.
const BANDS_PER_THREAD: usize = 4;

/// Height of one parallel row band. Threads only decide *which* disjoint
/// bands they produce — band geometry never changes what an output element
/// computes — so this is free to depend on the live thread cap without
/// breaking bit-identity across caps.
fn row_block_for(m: usize, threads: usize) -> usize {
    if threads <= 1 {
        return ROW_BLOCK;
    }
    let per = m.div_ceil(threads * BANDS_PER_THREAD);
    (per.div_ceil(MR) * MR).clamp(MR, ROW_BLOCK)
}

/// What the GEMM does with each finished accumulator tile.
#[derive(Clone, Copy)]
pub enum Epilogue<'a> {
    /// `out = acc`.
    Store,
    /// `out += acc` — weight-gradient accumulation (`dW += xᵀ·dy`).
    Accumulate,
    /// `out = acc + bias[j]` — fused dense/conv bias.
    Bias(&'a [f32]),
    /// `out = max(acc + bias[j], 0)` — fused bias + ReLU activation.
    BiasRelu(&'a [f32]),
}

/// The logical A operand: `A[i][p]`, `i < m`, `p < k`.
#[derive(Clone, Copy)]
enum AMat<'a> {
    /// Row-major `[m, k]` storage: `A[i][p] = d[i*k + p]`.
    RowMajor(&'a [f32]),
    /// Transposed view of row-major `[k, m]` storage:
    /// `A[i][p] = d[p*m + i]` (the `matmul_at_b` layout, never materialized).
    Trans { d: &'a [f32], m: usize },
}

/// The logical B operand: `B[p][j]`, `p < k`, `j < n`.
#[derive(Clone, Copy)]
enum BMat<'a> {
    /// Row-major `[k, n]` storage: `B[p][j] = d[p*n + j]`.
    RowMajor(&'a [f32]),
    /// Transposed view of row-major `[n, k]` storage:
    /// `B[p][j] = d[j*k + p]` (the `matmul_a_bt` layout).
    Trans { d: &'a [f32], k: usize },
}

// Pack scratch, thread-local to the *submitting* thread. Capacities persist
// across calls, so after the first step at each problem size the kernels
// allocate nothing. PACK_A is a slotted arena (one line-padded `k × MR`
// slot per parallel row band — see `gemm`); PACK_B holds the shared packed
// B panels. Worker threads touch neither: they receive their slot by
// pointer and never allocate.
thread_local! {
    static PACK_A: std::cell::Cell<Vec<f32>> = const { std::cell::Cell::new(Vec::new()) };
    static PACK_B: std::cell::Cell<Vec<f32>> = const { std::cell::Cell::new(Vec::new()) };
}

/// Packs B into `n.div_ceil(NR)` column panels, each `k × NR` in k-major
/// order, zero-padding the ragged last panel:
/// `bpack[jp*k*NR + p*NR + jj] = B[p][jp*NR + jj]`.
fn pack_b(b: BMat, k: usize, n: usize, bpack: &mut Vec<f32>) {
    let n_panels = n.div_ceil(NR);
    bpack.clear();
    bpack.resize(n_panels * k * NR, 0.0);
    match b {
        BMat::RowMajor(d) => {
            for p in 0..k {
                let brow = &d[p * n..(p + 1) * n];
                for (jp, chunk) in brow.chunks(NR).enumerate() {
                    let dst = &mut bpack[jp * k * NR + p * NR..jp * k * NR + p * NR + chunk.len()];
                    dst.copy_from_slice(chunk);
                }
            }
        }
        BMat::Trans { d, k: kk } => {
            debug_assert_eq!(k, kk);
            for j in 0..n {
                let bcol = &d[j * k..(j + 1) * k]; // contiguous in p
                let (jp, jj) = (j / NR, j % NR);
                let panel = &mut bpack[jp * k * NR..(jp + 1) * k * NR];
                for (p, &v) in bcol.iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            }
        }
    }
}

/// Packs rows `i0 .. i0+mr` of A into a `[k][MR]` micro-panel, zero-padding
/// lanes past `mr`: `apack[p*MR + ii] = A[i0+ii][p]`.
fn pack_a(a: AMat, i0: usize, mr: usize, k: usize, apack: &mut [f32]) {
    debug_assert_eq!(apack.len(), k * MR);
    if mr < MR {
        apack.fill(0.0);
    }
    match a {
        AMat::RowMajor(d) => {
            for ii in 0..mr {
                let row = &d[(i0 + ii) * k..(i0 + ii + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    apack[p * MR + ii] = v;
                }
            }
        }
        AMat::Trans { d, m } => {
            for p in 0..k {
                let src = &d[p * m + i0..p * m + i0 + mr];
                apack[p * MR..p * MR + mr].copy_from_slice(src);
            }
        }
    }
}

/// The register-tile kernel: `acc[ii][jj] = fma(apack[p][ii], bpanel[p][jj],
/// acc[ii][jj])` for `p` ascending — the deterministic reduction order.
///
/// Every update is a **fused** multiply-add. IEEE 754 specifies
/// `fusedMultiplyAdd` exactly (one rounding), so the AVX2 `vfmadd`
/// intrinsics, scalar `f32::mul_add`, and [`matmul_naive`]'s reference loop
/// all produce the same bit pattern — the dispatch below can never change a
/// result, only its speed.
#[inline(always)]
fn micro_kernel(apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        unsafe { micro_kernel_avx2(apack, bpanel, acc) };
        return;
    }
    micro_kernel_generic(apack, bpanel, acc);
}

/// Portable microkernel. `mul_add` keeps it bit-compatible with the AVX2
/// path (and fast on targets whose baseline ISA has fused ops, e.g.
/// aarch64); x86 CPUs old enough to lack AVX2 fall back to libm's `fmaf`.
fn micro_kernel_generic(apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (bp, ap) in bpanel.chunks_exact(NR).zip(apack.chunks_exact(MR)) {
        for ii in 0..MR {
            let a = ap[ii];
            for jj in 0..NR {
                acc[ii][jj] = a.mul_add(bp[jj], acc[ii][jj]);
            }
        }
    }
}

/// The 4×16 AVX2+FMA microkernel: 8 accumulator vectors (two per row of the
/// tile) make 8 independent FMA dependency chains, hiding the ~4-cycle FMA
/// latency so the loop runs at the FMA ports' throughput.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_avx2(apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let k = apack.len() / MR;
    debug_assert_eq!(bpanel.len(), k * NR);
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    let mut ap = apack.as_ptr();
    let mut bp = bpanel.as_ptr();
    for _ in 0..k {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (ii, ci) in c.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*ap.add(ii));
            ci[0] = _mm256_fmadd_ps(a, b0, ci[0]);
            ci[1] = _mm256_fmadd_ps(a, b1, ci[1]);
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for (ii, ci) in c.iter().enumerate() {
        _mm256_storeu_ps(acc[ii].as_mut_ptr(), ci[0]);
        _mm256_storeu_ps(acc[ii].as_mut_ptr().add(8), ci[1]);
    }
}

/// Applies the epilogue to the valid `mr × nr` region of a finished tile.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: tile coordinates are scalars by design
fn write_back(
    acc: &[[f32; NR]; MR],
    out_block: &mut [f32],
    local_row: usize,
    n: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    epi: Epilogue<'_>,
) {
    for ii in 0..mr {
        let orow = &mut out_block[(local_row + ii) * n + j0..(local_row + ii) * n + j0 + nr];
        match epi {
            Epilogue::Store => orow.copy_from_slice(&acc[ii][..nr]),
            Epilogue::Accumulate => {
                for (o, &v) in orow.iter_mut().zip(&acc[ii][..nr]) {
                    *o += v;
                }
            }
            Epilogue::Bias(bias) => {
                for (jj, o) in orow.iter_mut().enumerate() {
                    *o = acc[ii][jj] + bias[j0 + jj];
                }
            }
            Epilogue::BiasRelu(bias) => {
                for (jj, o) in orow.iter_mut().enumerate() {
                    *o = (acc[ii][jj] + bias[j0 + jj]).max(0.0);
                }
            }
        }
    }
}

/// Computes rows `r0 .. r0+rows` of the output into `out_block`
/// (a `rows × n` slice), reading packed B. `apack` is this band's private
/// `k × MR` pack scratch (a slot of the submitter's arena — see [`gemm`]).
#[allow(clippy::too_many_arguments)] // internal kernel plumbing: tile coordinates are scalars by design
fn gemm_block(
    a: AMat,
    bpack: &[f32],
    k: usize,
    n: usize,
    r0: usize,
    rows: usize,
    out_block: &mut [f32],
    epi: Epilogue<'_>,
    apack: &mut [f32],
) {
    let n_panels = n.div_ceil(NR);
    let mut iq = 0;
    while iq < rows {
        let mr = MR.min(rows - iq);
        pack_a(a, r0 + iq, mr, k, apack);
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let nr = NR.min(n - j0);
            let mut acc = [[0.0f32; NR]; MR];
            micro_kernel(apack, &bpack[jp * k * NR..(jp + 1) * k * NR], &mut acc);
            write_back(&acc, out_block, iq, n, j0, mr, nr, epi);
        }
        iq += MR;
    }
}

/// Floats per A-pack arena slot for reduction depth `k`: the `k × MR`
/// panel rounded up to a whole number of 64-byte lines, plus one spacer
/// line, so two bands' slots can never share a cache line no matter how
/// the arena's base pointer is aligned.
fn apack_slot(k: usize) -> usize {
    (k * MR).div_ceil(16) * 16 + 16
}

/// The shared blocked GEMM driver: `out[m,n] ⊕= A[m,k] · B[k,n]` where `⊕`
/// is the epilogue. `out.len()` must be `m * n`.
///
/// A-pack scratch is an arena owned by the submitting thread's
/// thread-local, grown once per problem size and handed out as one
/// line-padded slot per row band. The previous design let each *worker*
/// thread lazily allocate its own pack buffer the first time it claimed a
/// band — a heap allocation on the hot path of whichever thread got there
/// first, and unwarmable by the zero-alloc training step (warm-up can't
/// control which worker claims a band). Submitter-side slots make the
/// allocation pattern deterministic and worker threads allocation-free.
fn gemm(a: AMat, b: BMat, m: usize, k: usize, n: usize, out: &mut [f32], epi: Epilogue<'_>) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let mut bpack = PACK_B.with(|c| c.take());
    pack_b(b, k, n, &mut bpack);
    let mut arena = PACK_A.with(|c| c.take());
    if m * n >= PAR_THRESHOLD && m > 1 {
        let row_block = row_block_for(m, rayon::current_threads());
        let n_bands = m.div_ceil(row_block);
        let slot = apack_slot(k);
        if arena.len() < n_bands * slot {
            arena.resize(n_bands * slot, 0.0);
        }
        let base = arena.as_mut_ptr() as usize;
        let bp = &bpack;
        out.par_chunks_mut(row_block * n)
            .enumerate()
            .for_each(|(bi, block)| {
                // Safety: band `bi` writes only its own arena slot; slots
                // are disjoint (stride `slot` ≥ k*MR) and the arena Vec
                // outlives the parallel call, which blocks until done.
                let apack = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut f32).add(bi * slot), k * MR)
                };
                gemm_block(
                    a,
                    bp,
                    k,
                    n,
                    bi * row_block,
                    block.len() / n,
                    block,
                    epi,
                    apack,
                );
            });
    } else {
        if arena.len() < k * MR {
            arena.resize(k * MR, 0.0);
        }
        let (apack, _) = arena.split_at_mut(k * MR);
        gemm_block(a, &bpack, k, n, 0, m, out, epi, apack);
    }
    PACK_A.with(|c| c.set(arena));
    PACK_B.with(|c| c.set(bpack));
}

/// Matrix multiplication `[m,k] x [k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = matmul_check(a, b);
    let mut out = vec![0.0f32; m * n];
    matmul_epi_into(a, b, &mut out, Epilogue::Store);
    Tensor::from_vec(out, &[m, n])
}

/// [`matmul`] into a caller-provided buffer with a fused [`Epilogue`].
pub fn matmul_epi_into(a: &Tensor, b: &Tensor, out: &mut [f32], epi: Epilogue<'_>) {
    let (m, n) = matmul_check(a, b);
    let k = a.dims()[1];
    assert_eq!(out.len(), m * n, "matmul output buffer length");
    gemm(
        AMat::RowMajor(a.data()),
        BMat::RowMajor(b.data()),
        m,
        k,
        n,
        out,
        epi,
    );
}

fn matmul_check(a: &Tensor, b: &Tensor) -> (usize, usize) {
    assert!(
        a.shape().matmul_compatible(b.shape()),
        "matmul shape mismatch: {} x {}",
        a.shape(),
        b.shape()
    );
    (a.dims()[0], b.dims()[1])
}

/// `a^T x b` without materializing the transpose: `[k,m]^T x [k,n] -> [m,n]`.
/// Used by dense-layer weight gradients (`dW = x^T · dy`).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = at_b_check(a, b);
    let mut out = vec![0.0f32; m * n];
    matmul_at_b_epi_into(a, b, &mut out, Epilogue::Store);
    Tensor::from_vec(out, &[m, n])
}

/// [`matmul_at_b`] into a caller-provided buffer with a fused [`Epilogue`].
/// `Epilogue::Accumulate` turns this into `out += aᵀ·b`, the gradient
/// accumulation the dense and conv backward passes need.
pub fn matmul_at_b_epi_into(a: &Tensor, b: &Tensor, out: &mut [f32], epi: Epilogue<'_>) {
    let (m, n) = at_b_check(a, b);
    let k = a.dims()[0];
    assert_eq!(out.len(), m * n, "matmul_at_b output buffer length");
    gemm(
        AMat::Trans { d: a.data(), m },
        BMat::RowMajor(b.data()),
        m,
        k,
        n,
        out,
        epi,
    );
}

fn at_b_check(a: &Tensor, b: &Tensor) -> (usize, usize) {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_at_b inner dims {k} vs {k2}");
    (m, n)
}

/// `a x b^T`: `[m,k] x [n,k]^T -> [m,n]`. Used by dense-layer input
/// gradients (`dx = dy · W^T`) and conv forward (`cols · Kᵀ`).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = a_bt_check(a, b);
    let mut out = vec![0.0f32; m * n];
    matmul_a_bt_epi_into(a, b, &mut out, Epilogue::Store);
    Tensor::from_vec(out, &[m, n])
}

/// [`matmul_a_bt`] into a caller-provided buffer with a fused [`Epilogue`].
pub fn matmul_a_bt_epi_into(a: &Tensor, b: &Tensor, out: &mut [f32], epi: Epilogue<'_>) {
    let (m, n) = a_bt_check(a, b);
    let k = a.dims()[1];
    assert_eq!(out.len(), m * n, "matmul_a_bt output buffer length");
    gemm(
        AMat::RowMajor(a.data()),
        BMat::Trans { d: b.data(), k },
        m,
        k,
        n,
        out,
        epi,
    );
}

fn a_bt_check(a: &Tensor, b: &Tensor) -> (usize, usize) {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_a_bt inner dims {k} vs {k2}");
    (m, n)
}

/// Geometry of a 2-D convolution / pooling window over an input plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input height and width.
    pub h: usize,
    pub w: usize,
    /// Kernel height and width.
    pub kh: usize,
    pub kw: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Symmetric zero padding along both axes.
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after convolving.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width after convolving.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Validates the geometry (kernel fits in the padded input).
    pub fn validate(&self) -> Result<(), String> {
        if self.stride == 0 {
            return Err("stride must be positive".into());
        }
        if self.h + 2 * self.pad < self.kh || self.w + 2 * self.pad < self.kw {
            return Err(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh,
                self.kw,
                self.h + 2 * self.pad,
                self.w + 2 * self.pad
            ));
        }
        Ok(())
    }
}

/// Lowers an input image batch `[batch, ch, h, w]` to a matrix
/// `[batch * out_h * out_w, ch * kh * kw]` so convolution becomes a matmul
/// against the reshaped kernel.
pub fn im2col(input: &Tensor, ch: usize, geom: ConvGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = ch * geom.kh * geom.kw;
    let rows = input.dims()[0] * oh * ow;
    let mut out = vec![0.0f32; rows * patch];
    im2col_into(input, ch, geom, &mut out);
    Tensor::from_vec(out, &[rows, patch])
}

/// [`im2col`] into a caller-provided buffer of length
/// `batch * out_h * out_w * ch * kh * kw`.
pub fn im2col_into(input: &Tensor, ch: usize, geom: ConvGeom, out: &mut [f32]) {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "im2col expects [batch, ch, h, w]");
    let (batch, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, ch);
    assert_eq!(h, geom.h);
    assert_eq!(w, geom.w);
    geom.validate().expect("invalid conv geometry");

    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = ch * geom.kh * geom.kw;
    let rows = batch * oh * ow;
    assert_eq!(out.len(), rows * patch, "im2col output buffer length");
    let data = input.data();

    let fill_row = |row_idx: usize, dst: &mut [f32]| {
        let b = row_idx / (oh * ow);
        let rest = row_idx % (oh * ow);
        let oy = rest / ow;
        let ox = rest % ow;
        let iy0 = (oy * geom.stride) as isize - geom.pad as isize;
        let ix0 = (ox * geom.stride) as isize - geom.pad as isize;
        let mut k = 0;
        for c in 0..ch {
            let plane = &data[(b * ch + c) * h * w..(b * ch + c + 1) * h * w];
            for ky in 0..geom.kh {
                let iy = iy0 + ky as isize;
                for kx in 0..geom.kw {
                    let ix = ix0 + kx as isize;
                    dst[k] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        plane[iy as usize * w + ix as usize]
                    } else {
                        0.0
                    };
                    k += 1;
                }
            }
        }
    };

    if rows * patch >= PAR_THRESHOLD {
        out.par_chunks_mut(patch)
            .enumerate()
            .for_each(|(i, dst)| fill_row(i, dst));
    } else {
        for (i, dst) in out.chunks_mut(patch).enumerate() {
            fill_row(i, dst);
        }
    }
}

/// The adjoint of [`im2col`]: scatters a column matrix back onto an image
/// batch of shape `[batch, ch, h, w]`, summing overlapping contributions.
/// Used to compute input gradients of convolutions.
pub fn col2im(cols: &Tensor, batch: usize, ch: usize, geom: ConvGeom) -> Tensor {
    let mut out = vec![0.0f32; batch * ch * geom.h * geom.w];
    col2im_into(cols, batch, ch, geom, &mut out);
    Tensor::from_vec(out, &[batch, ch, geom.h, geom.w])
}

/// [`col2im`] into a caller-provided buffer; the buffer is overwritten (the
/// scatter-sum starts from zero).
pub fn col2im_into(cols: &Tensor, batch: usize, ch: usize, geom: ConvGeom, out: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = ch * geom.kh * geom.kw;
    assert_eq!(cols.dims(), &[batch * oh * ow, patch], "col2im shape");
    let (h, w) = (geom.h, geom.w);
    assert_eq!(out.len(), batch * ch * h * w, "col2im output buffer length");
    out.fill(0.0);
    let data = cols.data();

    // Scatter is a reduction into the output image, so parallelize over the
    // batch axis: rows of a given image never collide with another image's.
    let per_image = |b: usize, img: &mut [f32]| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (b * oh + oy) * ow + ox;
                let src = &data[row * patch..(row + 1) * patch];
                let iy0 = (oy * geom.stride) as isize - geom.pad as isize;
                let ix0 = (ox * geom.stride) as isize - geom.pad as isize;
                let mut k = 0;
                for c in 0..ch {
                    for ky in 0..geom.kh {
                        let iy = iy0 + ky as isize;
                        for kx in 0..geom.kw {
                            let ix = ix0 + kx as isize;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                img[(c * h + iy as usize) * w + ix as usize] += src[k];
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
    };

    if batch > 1 && batch * ch * h * w >= PAR_THRESHOLD {
        out.par_chunks_mut(ch * h * w)
            .enumerate()
            .for_each(|(b, img)| per_image(b, img));
    } else {
        for (b, img) in out.chunks_mut(ch * h * w).enumerate() {
            per_image(b, img);
        }
    }
}

/// Reference (naive, serial) matmul used by tests to validate the blocked
/// kernels. Reduces over `k` ascending with fused multiply-adds — the same
/// order and rounding the microkernel uses, so the blocked kernels match it
/// *bitwise*, not just approximately.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = a.data()[i * k + p].mul_add(b.data()[p * n + j], acc);
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::NormalSampler;
    use crate::{approx_eq, TEST_EPS};

    fn randt(dims: &[usize], seed: u64) -> Tensor {
        let mut s = NormalSampler::seed_from(seed);
        Tensor::randn(dims, 0.0, 1.0, &mut s)
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = randt(&[5, 5], 1);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert!(approx_eq(&matmul(&a, &eye), &a, TEST_EPS));
        assert!(approx_eq(&matmul(&eye, &a), &a, TEST_EPS));
    }

    #[test]
    fn parallel_matches_naive_large() {
        let a = randt(&[130, 70], 2);
        let b = randt(&[70, 90], 3);
        assert!(approx_eq(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-3));
    }

    #[test]
    fn blocked_kernel_is_bitwise_naive() {
        // The microkernel reduces over k in the same ascending order as the
        // scalar reference, so equality is exact, not approximate.
        let a = randt(&[97, 61], 20);
        let b = randt(&[61, 83], 21);
        let blocked = matmul(&a, &b);
        let naive = matmul_naive(&a, &b);
        assert_eq!(
            blocked
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            naive.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = randt(&[40, 17], 4);
        let b = randt(&[40, 23], 5);
        let via_t = matmul(&a.transpose(), &b);
        assert!(approx_eq(&matmul_at_b(&a, &b), &via_t, 1e-3));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = randt(&[40, 17], 6);
        let b = randt(&[23, 17], 7);
        let via_t = matmul(&a, &b.transpose());
        assert!(approx_eq(&matmul_a_bt(&a, &b), &via_t, 1e-3));
    }

    #[test]
    fn at_b_parallel_path_matches_transpose() {
        // Large enough to cross PAR_THRESHOLD: exercises the row-block
        // parallel path of the (previously serial) weight-gradient kernel.
        let a = randt(&[90, 130], 14);
        let b = randt(&[90, 75], 15);
        let via_t = matmul(&a.transpose(), &b);
        assert!(approx_eq(&matmul_at_b(&a, &b), &via_t, 1e-2));
    }

    #[test]
    fn epilogues_fuse_bias_and_relu() {
        let a = randt(&[9, 7], 11);
        let b = randt(&[7, 13], 12);
        let bias = randt(&[13], 13);
        let base = matmul(&a, &b);

        let mut with_bias = vec![0.0f32; 9 * 13];
        matmul_epi_into(&a, &b, &mut with_bias, Epilogue::Bias(bias.data()));
        let expect = base.add_row_broadcast(&bias);
        assert!(approx_eq(
            &Tensor::from_vec(with_bias.clone(), &[9, 13]),
            &expect,
            0.0
        ));

        let mut with_relu = vec![0.0f32; 9 * 13];
        matmul_epi_into(&a, &b, &mut with_relu, Epilogue::BiasRelu(bias.data()));
        assert!(approx_eq(
            &Tensor::from_vec(with_relu, &[9, 13]),
            &expect.map(|v| v.max(0.0)),
            0.0
        ));

        let mut acc = with_bias;
        matmul_epi_into(&a, &b, &mut acc, Epilogue::Accumulate);
        let expect_acc = expect.add(&base);
        assert!(approx_eq(
            &Tensor::from_vec(acc, &[9, 13]),
            &expect_acc,
            1e-5
        ));
    }

    #[test]
    fn degenerate_shapes() {
        // k = 0: the sum is empty, the output is all zeros.
        let c = matmul(&Tensor::zeros(&[3, 0]), &Tensor::zeros(&[0, 4]));
        assert_eq!(c.dims(), &[3, 4]);
        assert!(c.data().iter().all(|&x| x == 0.0));
        // m = 0 / n = 0: empty outputs.
        assert_eq!(
            matmul(&Tensor::zeros(&[0, 5]), &Tensor::zeros(&[5, 4])).numel(),
            0
        );
        assert_eq!(
            matmul(&Tensor::zeros(&[4, 5]), &Tensor::zeros(&[5, 0])).numel(),
            0
        );
        // 1×k and k×1.
        let a = randt(&[1, 9], 16);
        let b = randt(&[9, 1], 17);
        assert!(approx_eq(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-5));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn conv_geom_output_dims() {
        let g = ConvGeom {
            h: 16,
            w: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        let g2 = ConvGeom { stride: 2, ..g };
        assert_eq!((g2.out_h(), g2.out_w()), (8, 8));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn conv_geom_rejects_oversized_kernel() {
        let g = ConvGeom {
            h: 2,
            w: 2,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 0,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // A 1x1 kernel with stride 1 and no padding is a pure reshuffle.
        let input = randt(&[2, 3, 4, 4], 8);
        let g = ConvGeom {
            h: 4,
            w: 4,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let cols = im2col(&input, 3, g);
        assert_eq!(cols.dims(), &[2 * 16, 3]);
        // Element [b, c, y, x] must appear at cols[(b*16 + y*4 + x), c].
        assert_eq!(cols.at(&[0, 0]), input.at(&[0, 0, 0, 0]));
        assert_eq!(cols.at(&[5, 2]), input.at(&[0, 2, 1, 1]));
        assert_eq!(cols.at(&[16 + 3, 1]), input.at(&[1, 1, 0, 3]));
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let g = ConvGeom {
            h: 2,
            w: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let cols = im2col(&input, 1, g);
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output position: only the bottom-right 2x2 of the kernel
        // overlaps real pixels.
        let row0: Vec<f32> = cols.data()[0..9].to_vec();
        assert_eq!(row0, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y: the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let g = ConvGeom {
            h: 5,
            w: 4,
            kh: 3,
            kw: 2,
            stride: 1,
            pad: 1,
        };
        let x = randt(&[2, 3, 5, 4], 9);
        let cols_shape = [2 * g.out_h() * g.out_w(), 3 * g.kh * g.kw];
        let y = randt(&cols_shape, 10);
        let lhs: f32 = im2col(&x, 3, g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, 2, 3, g).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_into_overwrites_stale_contents() {
        let g = ConvGeom {
            h: 3,
            w: 3,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let cols = randt(&[4, 4], 18);
        let fresh = col2im(&cols, 1, 1, g);
        let mut buf = vec![99.0f32; 9];
        col2im_into(&cols, 1, 1, g, &mut buf);
        assert_eq!(buf, fresh.data());
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Convolve a single 3x3 input with a single 2x2 kernel by hand and
        // via the im2col-matmul lowering.
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]);
        let kernel = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 4]); // [out_ch, ch*kh*kw]
        let g = ConvGeom {
            h: 3,
            w: 3,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let cols = im2col(&input, 1, g);
        let out = matmul_a_bt(&cols, &kernel); // [4, 1]
                                               // direct: out[y][x] = in[y][x] - in[y+1][x+1]
        let expect = [1.0 - 5.0, 2.0 - 6.0, 4.0 - 8.0, 5.0 - 9.0];
        for (o, e) in out.data().iter().zip(expect) {
            assert!((o - e).abs() < 1e-6);
        }
    }
}
