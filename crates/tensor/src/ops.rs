//! Rayon-parallel linear algebra and convolution transforms.
//!
//! The hot kernels of the DL substrate live here:
//!
//! * [`matmul`] — blocked, row-parallel matrix multiplication. Client
//!   training in the simulated fleet runs many models concurrently via
//!   rayon's work stealing, so the kernel parallelizes over output rows
//!   (cheap to split, no synchronization) rather than using nested
//!   parallelism.
//! * [`im2col`] / [`col2im`] — the standard lowering of 2-D convolution to
//!   matmul, used by `vc_nn::Conv2d` forward and backward passes.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Threshold (in output elements) below which matmul runs serially; spawning
/// rayon tasks for tiny matrices costs more than the multiply.
const PAR_THRESHOLD: usize = 64 * 64;

/// Matrix multiplication `[m,k] x [k,n] -> [m,n]`.
///
/// Parallelizes over rows of the output when the problem is large enough.
/// The inner loop is written `i-k-j` so the innermost accesses are contiguous
/// in both `b` and the output row, which lets LLVM vectorize it.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(
        a.shape().matmul_compatible(b.shape()),
        "matmul shape mismatch: {} x {}",
        a.shape(),
        b.shape()
    );
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();

    let row_kernel = |i: usize, out_row: &mut [f32]| {
        for p in 0..k {
            let aik = ad[i * k + p];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    };

    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_kernel(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a^T x b` without materializing the transpose: `[k,m]^T x [k,n] -> [m,n]`.
/// Used by dense-layer weight gradients (`dW = x^T · dy`).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_at_b inner dims {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    // out[i][j] = sum_p a[p][i] * b[p][j]; accumulate row-by-row of a/b so
    // every pass is contiguous.
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a x b^T`: `[m,k] x [n,k]^T -> [m,n]`. Used by dense-layer input
/// gradients (`dx = dy · W^T`).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2);
    assert_eq!(b.shape().rank(), 2);
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_a_bt inner dims {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let kernel = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| kernel(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            kernel(i, row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Geometry of a 2-D convolution / pooling window over an input plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input height and width.
    pub h: usize,
    pub w: usize,
    /// Kernel height and width.
    pub kh: usize,
    pub kw: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Symmetric zero padding along both axes.
    pub pad: usize,
}

impl ConvGeom {
    /// Output height after convolving.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width after convolving.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Validates the geometry (kernel fits in the padded input).
    pub fn validate(&self) -> Result<(), String> {
        if self.stride == 0 {
            return Err("stride must be positive".into());
        }
        if self.h + 2 * self.pad < self.kh || self.w + 2 * self.pad < self.kw {
            return Err(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh,
                self.kw,
                self.h + 2 * self.pad,
                self.w + 2 * self.pad
            ));
        }
        Ok(())
    }
}

/// Lowers an input image batch `[batch, ch, h, w]` to a matrix
/// `[batch * out_h * out_w, ch * kh * kw]` so convolution becomes a matmul
/// against the reshaped kernel.
pub fn im2col(input: &Tensor, ch: usize, geom: ConvGeom) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "im2col expects [batch, ch, h, w]");
    let (batch, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, ch);
    assert_eq!(h, geom.h);
    assert_eq!(w, geom.w);
    geom.validate().expect("invalid conv geometry");

    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = ch * geom.kh * geom.kw;
    let rows = batch * oh * ow;
    let mut out = vec![0.0f32; rows * patch];
    let data = input.data();

    let fill_row = |row_idx: usize, dst: &mut [f32]| {
        let b = row_idx / (oh * ow);
        let rest = row_idx % (oh * ow);
        let oy = rest / ow;
        let ox = rest % ow;
        let iy0 = (oy * geom.stride) as isize - geom.pad as isize;
        let ix0 = (ox * geom.stride) as isize - geom.pad as isize;
        let mut k = 0;
        for c in 0..ch {
            let plane = &data[(b * ch + c) * h * w..(b * ch + c + 1) * h * w];
            for ky in 0..geom.kh {
                let iy = iy0 + ky as isize;
                for kx in 0..geom.kw {
                    let ix = ix0 + kx as isize;
                    dst[k] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        plane[iy as usize * w + ix as usize]
                    } else {
                        0.0
                    };
                    k += 1;
                }
            }
        }
    };

    if rows * patch >= PAR_THRESHOLD {
        out.par_chunks_mut(patch)
            .enumerate()
            .for_each(|(i, dst)| fill_row(i, dst));
    } else {
        for (i, dst) in out.chunks_mut(patch).enumerate() {
            fill_row(i, dst);
        }
    }
    Tensor::from_vec(out, &[rows, patch])
}

/// The adjoint of [`im2col`]: scatters a column matrix back onto an image
/// batch of shape `[batch, ch, h, w]`, summing overlapping contributions.
/// Used to compute input gradients of convolutions.
pub fn col2im(cols: &Tensor, batch: usize, ch: usize, geom: ConvGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = ch * geom.kh * geom.kw;
    assert_eq!(cols.dims(), &[batch * oh * ow, patch], "col2im shape");
    let (h, w) = (geom.h, geom.w);
    let mut out = vec![0.0f32; batch * ch * h * w];
    let data = cols.data();

    // Scatter is a reduction into the output image, so parallelize over the
    // batch axis: rows of a given image never collide with another image's.
    let per_image = |b: usize, img: &mut [f32]| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (b * oh + oy) * ow + ox;
                let src = &data[row * patch..(row + 1) * patch];
                let iy0 = (oy * geom.stride) as isize - geom.pad as isize;
                let ix0 = (ox * geom.stride) as isize - geom.pad as isize;
                let mut k = 0;
                for c in 0..ch {
                    for ky in 0..geom.kh {
                        let iy = iy0 + ky as isize;
                        for kx in 0..geom.kw {
                            let ix = ix0 + kx as isize;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                img[(c * h + iy as usize) * w + ix as usize] += src[k];
                            }
                            k += 1;
                        }
                    }
                }
            }
        }
    };

    if batch > 1 && batch * ch * h * w >= PAR_THRESHOLD {
        out.par_chunks_mut(ch * h * w)
            .enumerate()
            .for_each(|(b, img)| per_image(b, img));
    } else {
        for (b, img) in out.chunks_mut(ch * h * w).enumerate() {
            per_image(b, img);
        }
    }
    Tensor::from_vec(out, &[batch, ch, h, w])
}

/// Reference (naive, serial) matmul used by tests to validate the parallel
/// kernels.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.data()[i * k + p] * b.data()[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::NormalSampler;
    use crate::{approx_eq, TEST_EPS};

    fn randt(dims: &[usize], seed: u64) -> Tensor {
        let mut s = NormalSampler::seed_from(seed);
        Tensor::randn(dims, 0.0, 1.0, &mut s)
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = randt(&[5, 5], 1);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert!(approx_eq(&matmul(&a, &eye), &a, TEST_EPS));
        assert!(approx_eq(&matmul(&eye, &a), &a, TEST_EPS));
    }

    #[test]
    fn parallel_matches_naive_large() {
        let a = randt(&[130, 70], 2);
        let b = randt(&[70, 90], 3);
        assert!(approx_eq(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-3));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = randt(&[40, 17], 4);
        let b = randt(&[40, 23], 5);
        let via_t = matmul(&a.transpose(), &b);
        assert!(approx_eq(&matmul_at_b(&a, &b), &via_t, 1e-3));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = randt(&[40, 17], 6);
        let b = randt(&[23, 17], 7);
        let via_t = matmul(&a, &b.transpose());
        assert!(approx_eq(&matmul_a_bt(&a, &b), &via_t, 1e-3));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn conv_geom_output_dims() {
        let g = ConvGeom {
            h: 16,
            w: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        let g2 = ConvGeom { stride: 2, ..g };
        assert_eq!((g2.out_h(), g2.out_w()), (8, 8));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn conv_geom_rejects_oversized_kernel() {
        let g = ConvGeom {
            h: 2,
            w: 2,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 0,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // A 1x1 kernel with stride 1 and no padding is a pure reshuffle.
        let input = randt(&[2, 3, 4, 4], 8);
        let g = ConvGeom {
            h: 4,
            w: 4,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let cols = im2col(&input, 3, g);
        assert_eq!(cols.dims(), &[2 * 16, 3]);
        // Element [b, c, y, x] must appear at cols[(b*16 + y*4 + x), c].
        assert_eq!(cols.at(&[0, 0]), input.at(&[0, 0, 0, 0]));
        assert_eq!(cols.at(&[5, 2]), input.at(&[0, 2, 1, 1]));
        assert_eq!(cols.at(&[16 + 3, 1]), input.at(&[1, 1, 0, 3]));
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let g = ConvGeom {
            h: 2,
            w: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let cols = im2col(&input, 1, g);
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output position: only the bottom-right 2x2 of the kernel
        // overlaps real pixels.
        let row0: Vec<f32> = cols.data()[0..9].to_vec();
        assert_eq!(row0, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y: the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let g = ConvGeom {
            h: 5,
            w: 4,
            kh: 3,
            kw: 2,
            stride: 1,
            pad: 1,
        };
        let x = randt(&[2, 3, 5, 4], 9);
        let cols_shape = [2 * g.out_h() * g.out_w(), 3 * g.kh * g.kw];
        let y = randt(&cols_shape, 10);
        let lhs: f32 = im2col(&x, 3, g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, 2, 3, g).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Convolve a single 3x3 input with a single 2x2 kernel by hand and
        // via the im2col-matmul lowering.
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]);
        let kernel = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 4]); // [out_ch, ch*kh*kw]
        let g = ConvGeom {
            h: 3,
            w: 3,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let cols = im2col(&input, 1, g);
        let out = matmul_a_bt(&cols, &kernel); // [4, 1]
                                               // direct: out[y][x] = in[y][x] - in[y+1][x+1]
        let expect = [1.0 - 5.0, 2.0 - 6.0, 4.0 - 8.0, 5.0 - 9.0];
        for (o, e) in out.data().iter().zip(expect) {
            assert!((o - e).abs() < 1e-6);
        }
    }
}
