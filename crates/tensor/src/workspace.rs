//! Reusable scratch buffers for the per-replica training hot loop.
//!
//! A [`Workspace`] is a pool of `Vec<f32>` buffers owned by one replica
//! (one worker thread / one simulated client). Layers and the trainer
//! [`take`](Workspace::take) buffers for activations, im2col columns and
//! gradient scratch at the start of an operation and
//! [`recycle`](Workspace::recycle) them once consumed. After a warm-up step
//! has populated the pool with every size the model needs, the steady-state
//! training loop performs **zero heap allocations**: every `take` is served
//! by reusing a previously recycled buffer's capacity.
//!
//! The pool is deliberately dumb — a flat list with best-fit-by-capacity
//! matching — because one replica only cycles through a handful of distinct
//! buffer sizes (one or two per layer), so the list stays short and the
//! linear scan is cheaper than any indexing scheme.
//!
//! Not `Sync` and not meant to be shared: one workspace per replica.

/// A recycling pool of `f32` buffers. See the module docs.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Recycled buffers, unordered. Capacities persist across reuse.
    free: Vec<Vec<f32>>,
    /// `take` calls that could not reuse a pooled buffer (stats only).
    misses: u64,
    /// Total `take` calls (stats only).
    takes: u64,
}

impl Workspace {
    /// An empty workspace; the first pass through a model fills the pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hands out a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest pooled buffer whose capacity suffices (best fit). Allocates
    /// only when no pooled buffer is large enough.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.takes += 1;
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer's storage to the pool for later reuse. The contents
    /// are discarded; only the capacity matters.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// `(takes, misses)` since construction. A warm steady state shows takes
    /// increasing while misses stay flat — the property the zero-allocation
    /// test asserts.
    pub fn stats(&self) -> (u64, u64) {
        (self.takes, self.misses)
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zero_fills_recycled_garbage() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.iter_mut().for_each(|x| *x = 7.0);
        ws.recycle(a);
        let b = ws.take(4);
        assert_eq!(b, vec![0.0; 4], "recycled contents must not leak through");
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut ws = Workspace::new();
        // Warm-up: the two sizes the "model" uses.
        let a = ws.take(100);
        let b = ws.take(50);
        ws.recycle(a);
        ws.recycle(b);
        let (_, warm_misses) = ws.stats();
        for _ in 0..10 {
            let a = ws.take(100);
            let b = ws.take(50);
            ws.recycle(a);
            ws.recycle(b);
        }
        let (takes, misses) = ws.stats();
        assert_eq!(misses, warm_misses, "steady state must reuse, not allocate");
        assert_eq!(takes, 22);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::with_capacity(1000));
        ws.recycle(Vec::with_capacity(10));
        let buf = ws.take(5);
        assert!(buf.capacity() < 1000, "should have taken the small buffer");
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::new());
        assert_eq!(ws.pooled(), 0);
    }
}
