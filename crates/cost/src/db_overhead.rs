//! §IV-D: training-time overhead of a strong-consistency parameter store.

use serde::{Deserialize, Serialize};

/// Overhead of choosing a strong-consistency store over an eventual one,
/// for a job with a known number of parameter-update operations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DbOverhead {
    /// Per-update latency of the eventual-consistency store, seconds
    /// (paper: Redis, 0.87 s).
    pub eventual_update_s: f64,
    /// Per-update latency of the strong-consistency store, seconds
    /// (paper: MySQL, 1.29 s).
    pub strong_update_s: f64,
}

impl DbOverhead {
    /// The paper's measured figures.
    pub fn paper_measured() -> Self {
        DbOverhead {
            eventual_update_s: 0.87,
            strong_update_s: 1.29,
        }
    }

    /// Slowdown ratio (paper: 1.5×).
    pub fn ratio(&self) -> f64 {
        self.strong_update_s / self.eventual_update_s
    }

    /// Extra seconds a job with `updates` update operations pays for strong
    /// consistency.
    pub fn extra_s(&self, updates: u64) -> f64 {
        (self.strong_update_s - self.eventual_update_s) * updates as f64
    }

    /// Update count for a CIFAR10-scale job (paper: ~2 000 for 40 epochs of
    /// 50 subtasks).
    pub fn cifar10_updates(epochs: u64) -> u64 {
        epochs * 50
    }

    /// Update count for an ImageNet-scale job. §IV-D: ImageNet's training
    /// data is ~800× CIFAR10's, so the same 40-epoch job performs ~800×
    /// the update operations (~1.6 M).
    pub fn imagenet_updates(epochs: u64) -> u64 {
        Self::cifar10_updates(epochs) * 800
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_is_1_5x() {
        let d = DbOverhead::paper_measured();
        assert!((d.ratio() - 1.483).abs() < 0.01);
    }

    #[test]
    fn cifar10_overhead_is_14_minutes() {
        let d = DbOverhead::paper_measured();
        let updates = DbOverhead::cifar10_updates(40);
        assert_eq!(updates, 2000);
        let minutes = d.extra_s(updates) / 60.0;
        assert!((minutes - 14.0).abs() < 0.5, "{minutes}");
    }

    #[test]
    fn imagenet_overhead_is_187_hours() {
        let d = DbOverhead::paper_measured();
        let updates = DbOverhead::imagenet_updates(40);
        assert_eq!(updates, 1_600_000);
        let hours = d.extra_s(updates) / 3600.0;
        assert!((hours - 186.7).abs() < 1.0, "{hours}");
    }

    #[test]
    fn extra_scales_linearly() {
        let d = DbOverhead::paper_measured();
        assert!((d.extra_s(2000) * 800.0 - d.extra_s(1_600_000)).abs() < 1e-6);
    }
}
