//! The §IV-E binomial timeout model and its Monte-Carlo validation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The analytic model: subtask waves as independent Bernoulli trials.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeoutAnalysis {
    /// Total subtasks in the job (`n_s` = epochs × subtasks/epoch).
    pub n_s: f64,
    /// Client instances (`n_c`).
    pub n_c: f64,
    /// Simultaneous subtasks per client (`n_tc`).
    pub n_tc: f64,
    /// Average subtask execution time, seconds (`t_e`).
    pub t_e: f64,
    /// Timeout, seconds (`t_o`).
    pub t_o: f64,
}

impl TimeoutAnalysis {
    /// The paper's worked example: P5C5T2, 2 000 subtasks, t_e ≤ 2.4 min,
    /// t_o = 5 min.
    pub fn paper_p5c5t2() -> Self {
        TimeoutAnalysis {
            n_s: 2000.0,
            n_c: 5.0,
            n_tc: 2.0,
            t_e: 144.0,
            t_o: 300.0,
        }
    }

    /// Waves that can each accrue one timeout: `n = n_s / (n_c · n_tc)`.
    pub fn n_waves(&self) -> f64 {
        self.n_s / (self.n_c * self.n_tc)
    }

    /// Baseline training time without interruptions: `n · t_e`.
    pub fn base_time_s(&self) -> f64 {
        self.n_waves() * self.t_e
    }

    /// Expected training time at interruption probability `p`:
    /// `n·p·(t_e + t_o) + n·(1−p)·t_e = n·t_e + n·p·t_o`.
    pub fn expected_time_s(&self, p: f64) -> f64 {
        self.base_time_s() + self.expected_extra_s(p)
    }

    /// The expected increase: `n·p·t_o`.
    pub fn expected_extra_s(&self, p: f64) -> f64 {
        self.n_waves() * p * self.t_o
    }
}

/// Monte-Carlo version of the same process: each wave draws a Bernoulli
/// interruption; an interrupted wave costs `t_e + t_o`, a clean one `t_e`.
/// Returns the mean extra time over `trials` simulated jobs.
pub fn simulate_extra_time_s(a: &TimeoutAnalysis, p: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let waves = a.n_waves().round() as usize;
    let mut total_extra = 0.0;
    for _ in 0..trials {
        let mut extra = 0.0;
        for _ in 0..waves {
            if rng.gen::<f64>() < p {
                extra += a.t_o;
            }
        }
        total_extra += extra;
    }
    total_extra / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_expected_extras() {
        // §IV-E: p = 0.05 → 50 min; p = 0.20 → 200 min.
        let a = TimeoutAnalysis::paper_p5c5t2();
        assert_eq!(a.n_waves(), 200.0);
        assert!((a.expected_extra_s(0.05) / 60.0 - 50.0).abs() < 1e-9);
        assert!((a.expected_extra_s(0.20) / 60.0 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn base_time_is_about_8_hours() {
        // 200 waves × 2.4 min = 480 min = 8 h, matching "total training
        // time is slightly more than 8 hr".
        let a = TimeoutAnalysis::paper_p5c5t2();
        assert!((a.base_time_s() / 3600.0 - 8.0).abs() < 0.01);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let a = TimeoutAnalysis::paper_p5c5t2();
        for &p in &[0.05, 0.20] {
            let analytic = a.expected_extra_s(p);
            let simulated = simulate_extra_time_s(&a, p, 400, 42);
            let rel = (simulated - analytic).abs() / analytic;
            assert!(rel < 0.05, "p={p}: {simulated} vs {analytic}");
        }
    }

    #[test]
    fn expected_time_is_base_plus_extra() {
        let a = TimeoutAnalysis::paper_p5c5t2();
        let p = 0.1;
        assert!((a.expected_time_s(p) - (a.base_time_s() + a.expected_extra_s(p))).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_means_no_extra() {
        let a = TimeoutAnalysis::paper_p5c5t2();
        assert_eq!(a.expected_extra_s(0.0), 0.0);
        assert_eq!(simulate_extra_time_s(&a, 0.0, 10, 1), 0.0);
    }
}
