//! # vc-cost
//!
//! The economics of §IV-E (preemptible instances) and the database-overhead
//! arithmetic of §IV-D:
//!
//! * [`pricing`] — fleet cost under standard vs preemptible pricing and the
//!   horizontal-vs-vertical scaling cost comparison.
//! * [`preempt_analysis`] — the binomial timeout model
//!   (`E[extra] = n·p·t_o`) plus a Monte-Carlo validation of it.
//! * [`db_overhead`] — training-time overhead of a strong-consistency
//!   parameter store as update counts scale (CIFAR10 → ImageNet).

pub mod db_overhead;
pub mod preempt_analysis;
pub mod pricing;

pub use db_overhead::DbOverhead;
pub use preempt_analysis::{simulate_extra_time_s, TimeoutAnalysis};
pub use pricing::FleetCost;
