//! Fleet pricing.

use serde::{Deserialize, Serialize};
use vc_simnet::InstanceSpec;

/// Cost summary of running a fleet for some duration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetCost {
    /// USD per hour on standard (on-demand) instances.
    pub standard_per_hour: f64,
    /// USD per hour on preemptible instances.
    pub preemptible_per_hour: f64,
    /// Run duration in hours.
    pub hours: f64,
}

impl FleetCost {
    /// Prices a fleet for a run of `hours`.
    pub fn of(fleet: &[InstanceSpec], hours: f64) -> FleetCost {
        FleetCost {
            standard_per_hour: fleet.iter().map(|i| i.hourly_usd).sum(),
            preemptible_per_hour: fleet.iter().map(|i| i.hourly_usd_preemptible).sum(),
            hours,
        }
    }

    /// Total cost on standard instances.
    pub fn standard_total(&self) -> f64 {
        self.standard_per_hour * self.hours
    }

    /// Total cost on preemptible instances.
    pub fn preemptible_total(&self) -> f64 {
        self.preemptible_per_hour * self.hours
    }

    /// Fractional saving from preemptible pricing (0.7 = 70 %).
    pub fn saving(&self) -> f64 {
        1.0 - self.preemptible_per_hour / self.standard_per_hour
    }

    /// Preemptible total *including* the expected extra runtime caused by
    /// interruptions (`extra_hours` from the §IV-E model): the honest
    /// comparison — cheap instances that stretch the job still have to pay
    /// for the stretch.
    pub fn preemptible_total_with_delay(&self, extra_hours: f64) -> f64 {
        self.preemptible_per_hour * (self.hours + extra_hours)
    }
}

/// Cost of `count` instances of a type for `hours`, preemptible. Used for
/// the horizontal-vs-vertical comparison in §IV-E (many small instances vs
/// few large ones).
pub fn scale_out_cost(instance: &InstanceSpec, count: usize, hours: f64) -> f64 {
    instance.hourly_usd_preemptible * count as f64 * hours
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_simnet::table1;

    #[test]
    fn paper_p5c5t2_costs() {
        // §IV-E: $1.67/h standard vs $0.50/h preemptible; 8 h ⇒ $13.4 vs $4.
        let fleet = table1::uniform_fleet(5);
        let cost = FleetCost::of(&fleet, 8.0);
        assert!((cost.standard_per_hour - 1.67).abs() < 1e-9);
        assert!((cost.preemptible_per_hour - 0.50).abs() < 1e-9);
        assert!((cost.standard_total() - 13.36).abs() < 0.05);
        assert!((cost.preemptible_total() - 4.0).abs() < 0.01);
        assert!((cost.saving() - 0.7006).abs() < 0.01);
    }

    #[test]
    fn delay_inflates_preemptible_cost() {
        let fleet = table1::uniform_fleet(5);
        let cost = FleetCost::of(&fleet, 8.0);
        // 50 minutes of expected extra time at p = 0.05.
        let with_delay = cost.preemptible_total_with_delay(50.0 / 60.0);
        assert!(with_delay > cost.preemptible_total());
        // Still far below standard.
        assert!(with_delay < 0.4 * cost.standard_total());
    }

    #[test]
    fn scale_out_is_linear() {
        let c = table1::client_8v_2_2();
        let five = scale_out_cost(&c, 5, 8.0);
        let ten = scale_out_cost(&c, 10, 8.0);
        assert!((ten / five - 2.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_fleet_prices_by_vcpu() {
        let mixed = table1::mixed_fleet(4);
        let cost = FleetCost::of(&mixed, 1.0);
        // Contains one 16-vCPU instance: pricier than 4×8-vCPU.
        let uniform = FleetCost::of(&table1::uniform_fleet(4), 1.0);
        assert!(cost.standard_per_hour > uniform.standard_per_hour);
    }
}
