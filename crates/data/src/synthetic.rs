//! Procedural CIFAR-like dataset generation.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vc_tensor::{NormalSampler, Tensor};

/// Generation parameters for the synthetic image-classification problem.
///
/// Each class owns a spatially-smoothed random prototype. A sample is the
/// class prototype, randomly translated by up to `max_shift` pixels,
/// amplitude-jittered, with i.i.d. Gaussian pixel noise of strength `noise`
/// added, and with probability `label_noise` the label is resampled
/// uniformly. `noise` and `label_noise` together set the achievable
/// accuracy plateau — the knob used to match the paper's ~0.73/~0.82
/// operating points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of classes (CIFAR10 → 10).
    pub classes: usize,
    /// Channels, height, width (CIFAR10 → `[3, 32, 32]`; experiments default
    /// to `[3, 16, 16]` to keep real training inside CI budgets).
    pub img: [usize; 3],
    /// Training-set size.
    pub train_n: usize,
    /// Validation-set size (the parameter server scores each assimilated
    /// update on this split).
    pub val_n: usize,
    /// Held-out test-set size (Figure 6 reports it).
    pub test_n: usize,
    /// Pixel-noise standard deviation relative to unit signal.
    pub noise: f32,
    /// Probability of a uniformly-random label.
    pub label_noise: f32,
    /// Maximum translation jitter in pixels.
    pub max_shift: usize,
    /// Generation seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A configuration scaled for tests: small images, small splits.
    pub fn tiny(seed: u64) -> Self {
        SyntheticSpec {
            classes: 4,
            img: [1, 8, 8],
            train_n: 200,
            val_n: 64,
            test_n: 64,
            noise: 0.6,
            label_noise: 0.0,
            max_shift: 1,
            seed,
        }
    }

    /// The default experiment configuration: a 10-class, 3×16×16 problem
    /// whose difficulty is tuned so the reference models plateau in the
    /// 0.7–0.85 accuracy band, like CIFAR10 under the paper's ResNetV2.
    pub fn cifar_like(seed: u64) -> Self {
        SyntheticSpec {
            classes: 10,
            img: [3, 16, 16],
            train_n: 5_000,
            val_n: 500,
            test_n: 1_000,
            noise: 2.6,
            label_noise: 0.10,
            max_shift: 2,
            seed,
        }
    }

    /// Generates `(train, val, test)` datasets.
    pub fn generate(&self) -> (Dataset, Dataset, Dataset) {
        assert!(self.classes >= 2, "need at least two classes");
        let [ch, h, w] = self.img;
        assert!(
            h > 2 * self.max_shift && w > 2 * self.max_shift,
            "image too small for shift"
        );
        let mut sampler = NormalSampler::seed_from(self.seed);
        let prototypes: Vec<Vec<f32>> = (0..self.classes)
            .map(|_| smooth_prototype(ch, h, w, &mut sampler))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let mut noise_sampler =
            NormalSampler::seed_from(self.seed.wrapping_mul(0x85eb_ca6b).wrapping_add(2));

        let mut make = |n: usize| -> Dataset {
            let sample_len = ch * h * w;
            let mut data = Vec::with_capacity(n * sample_len);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                // Round-robin classes for exact balance, then optional label noise.
                let class = i % self.classes;
                let dy = rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize);
                let dx = rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize);
                let amp: f32 = rng.gen_range(0.8..1.2);
                let proto = &prototypes[class];
                for c in 0..ch {
                    for y in 0..h {
                        for x in 0..w {
                            let sy = y as isize + dy;
                            let sx = x as isize + dx;
                            let sig = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                                proto[(c * h + sy as usize) * w + sx as usize]
                            } else {
                                0.0
                            };
                            data.push(amp * sig + self.noise * noise_sampler.sample());
                        }
                    }
                }
                let label = if self.label_noise > 0.0 && rng.gen::<f32>() < self.label_noise {
                    rng.gen_range(0..self.classes)
                } else {
                    class
                };
                labels.push(label);
            }
            let mut dims = vec![n];
            dims.extend_from_slice(&self.img);
            Dataset::new(Tensor::from_vec(data, &dims), labels, self.classes)
        };

        (make(self.train_n), make(self.val_n), make(self.test_n))
    }
}

/// Draws a random image and box-blurs it twice so prototypes have the
/// spatial correlation that makes convolution the right inductive bias.
fn smooth_prototype(ch: usize, h: usize, w: usize, sampler: &mut NormalSampler) -> Vec<f32> {
    let mut img: Vec<f32> = (0..ch * h * w).map(|_| sampler.sample()).collect();
    for _ in 0..2 {
        img = box_blur(&img, ch, h, w);
    }
    // Re-normalize each channel plane to unit RMS so `noise` is a meaningful
    // signal-to-noise knob.
    for c in 0..ch {
        let plane = &mut img[c * h * w..(c + 1) * h * w];
        let rms = (plane.iter().map(|v| v * v).sum::<f32>() / plane.len() as f32).sqrt();
        if rms > 1e-6 {
            for v in plane.iter_mut() {
                *v /= rms;
            }
        }
    }
    img
}

/// 3×3 box blur with clamped borders, per channel.
fn box_blur(img: &[f32], ch: usize, h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; img.len()];
    for c in 0..ch {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        let sy = y as isize + dy;
                        let sx = x as isize + dx;
                        if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                            acc += img[(c * h + sy as usize) * w + sx as usize];
                            cnt += 1.0;
                        }
                    }
                }
                out[(c * h + y) * w + x] = acc / cnt;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_have_requested_sizes() {
        let spec = SyntheticSpec::tiny(1);
        let (tr, va, te) = spec.generate();
        assert_eq!(tr.len(), 200);
        assert_eq!(va.len(), 64);
        assert_eq!(te.len(), 64);
        assert_eq!(tr.sample_dims(), &[1, 8, 8]);
    }

    #[test]
    fn classes_are_balanced_without_label_noise() {
        let spec = SyntheticSpec::tiny(2);
        let (tr, _, _) = spec.generate();
        let hist = tr.class_histogram();
        assert_eq!(hist, vec![50, 50, 50, 50]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSpec::tiny(3).generate().0;
        let b = SyntheticSpec::tiny(3).generate().0;
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.labels, b.labels);
        let c = SyntheticSpec::tiny(4).generate().0;
        assert_ne!(a.images.data(), c.images.data());
    }

    #[test]
    fn same_class_more_similar_than_cross_class() {
        // The generator's core property: within-class correlation exceeds
        // cross-class correlation, so the problem is learnable.
        let spec = SyntheticSpec {
            noise: 0.3,
            ..SyntheticSpec::tiny(5)
        };
        let (tr, _, _) = spec.generate();
        let sample_len: usize = tr.sample_dims().iter().product();
        let dot = |i: usize, j: usize| -> f32 {
            let a = &tr.images.data()[i * sample_len..(i + 1) * sample_len];
            let b = &tr.images.data()[j * sample_len..(j + 1) * sample_len];
            let na = a.iter().map(|v| v * v).sum::<f32>().sqrt();
            let nb = b.iter().map(|v| v * v).sum::<f32>().sqrt();
            a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>() / (na * nb)
        };
        // Samples 0 and 4 share class 0; sample 1 is class 1 (round-robin).
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut n = 0.0;
        for i in 0..20 {
            for j in (i + 1)..20 {
                if tr.labels[i] == tr.labels[j] {
                    within += dot(i, j);
                } else {
                    cross += dot(i, j);
                }
                n += 1.0;
            }
        }
        let _ = n;
        assert!(
            within > cross,
            "within-class similarity {within} not above cross-class {cross}"
        );
    }

    #[test]
    fn label_noise_perturbs_balance() {
        let spec = SyntheticSpec {
            label_noise: 0.5,
            train_n: 2000,
            ..SyntheticSpec::tiny(6)
        };
        let (tr, _, _) = spec.generate();
        let hist = tr.class_histogram();
        // Still roughly balanced, but not exactly 500 each.
        assert!(hist.iter().any(|&c| c != 500));
        assert!(hist.iter().all(|&c| c > 350 && c < 650), "{hist:?}");
    }

    #[test]
    fn noise_zero_gives_pure_prototypes() {
        let spec = SyntheticSpec {
            noise: 0.0,
            max_shift: 1,
            ..SyntheticSpec::tiny(7)
        };
        let (tr, _, _) = spec.generate();
        // Two same-class samples with the same shift/amplitude need not be
        // identical, but all values must be finite and bounded.
        assert!(tr.images.data().iter().all(|v| v.is_finite()));
        assert!(tr.images.max() < 10.0 && tr.images.min() > -10.0);
    }

    #[test]
    fn cifar_like_is_paper_shaped() {
        let spec = SyntheticSpec::cifar_like(0);
        assert_eq!(spec.classes, 10);
        assert_eq!(spec.img[0], 3);
        // 50 shards of the training split mirror the paper's 50 subtasks.
        assert_eq!(spec.train_n % 50, 0);
    }

    #[test]
    fn box_blur_preserves_constant_images() {
        let img = vec![2.5f32; 4 * 4];
        let out = box_blur(&img, 1, 4, 4);
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }
}
