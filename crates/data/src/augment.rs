//! Data augmentation.
//!
//! Standard CIFAR-style augmentations — random horizontal flips and
//! shift-with-zero-pad crops — applied per client subtask. The paper's
//! TensorFlow pipeline could augment on the client; ours mirrors that as an
//! opt-in transform so the ablation benches can measure what it buys under
//! weight averaging.

use crate::dataset::Dataset;
use rand::Rng;
use vc_tensor::Tensor;

/// Augmentation configuration.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Augment {
    /// Probability of a horizontal flip per sample.
    pub flip_prob: f32,
    /// Maximum shift in pixels along each axis (zero-padded).
    pub max_shift: usize,
}

impl Augment {
    /// The common CIFAR recipe: 50 % flips, ±2 px shifts.
    pub fn standard() -> Self {
        Augment {
            flip_prob: 0.5,
            max_shift: 2,
        }
    }

    /// No-op augmentation.
    pub fn none() -> Self {
        Augment {
            flip_prob: 0.0,
            max_shift: 0,
        }
    }

    /// Applies the augmentation to every sample of `data`, returning a new
    /// dataset with the same labels. Deterministic given the RNG state.
    pub fn apply<R: Rng>(&self, data: &Dataset, rng: &mut R) -> Dataset {
        let dims = data.images.dims();
        assert_eq!(dims.len(), 4, "augmentation expects [n, ch, h, w] images");
        let (n, ch, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let src = data.images.data();
        let mut out = vec![0.0f32; src.len()];
        for i in 0..n {
            let flip = self.flip_prob > 0.0 && rng.gen::<f32>() < self.flip_prob;
            let (dy, dx) = if self.max_shift > 0 {
                let m = self.max_shift as isize;
                (rng.gen_range(-m..=m), rng.gen_range(-m..=m))
            } else {
                (0, 0)
            };
            for c in 0..ch {
                let plane = &src[(i * ch + c) * h * w..(i * ch + c + 1) * h * w];
                let dst = &mut out[(i * ch + c) * h * w..(i * ch + c + 1) * h * w];
                for y in 0..h {
                    for x in 0..w {
                        let sx_pre = if flip { w - 1 - x } else { x };
                        let sy = y as isize + dy;
                        let sx = sx_pre as isize + dx;
                        dst[y * w + x] = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize
                        {
                            plane[sy as usize * w + sx as usize]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
        let mut dims_v = vec![n];
        dims_v.extend_from_slice(&dims[1..]);
        Dataset::new(
            Tensor::from_vec(out, &dims_v),
            data.labels.clone(),
            data.classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn asym_dataset() -> Dataset {
        // One 1x2x2 image with distinguishable corners.
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        Dataset::new(img, vec![0], 1)
    }

    #[test]
    fn none_is_identity() {
        let d = asym_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let out = Augment::none().apply(&d, &mut rng);
        assert_eq!(out.images.data(), d.images.data());
        assert_eq!(out.labels, d.labels);
    }

    #[test]
    fn flip_mirrors_columns() {
        let d = asym_dataset();
        let aug = Augment {
            flip_prob: 1.0,
            max_shift: 0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let out = aug.apply(&d, &mut rng);
        assert_eq!(out.images.data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn shift_pads_with_zeros() {
        let d = asym_dataset();
        let aug = Augment {
            flip_prob: 0.0,
            max_shift: 1,
        };
        // Find a seed that produces a non-zero shift and check padding.
        let mut rng = StdRng::seed_from_u64(3);
        let out = aug.apply(&d, &mut rng);
        // Whatever the shift, the multiset of non-zero values is a subset
        // of the original values.
        for v in out.images.data() {
            assert!([0.0, 1.0, 2.0, 3.0, 4.0].contains(v));
        }
    }

    #[test]
    fn preserves_shape_and_labels_at_scale() {
        let spec = crate::synthetic::SyntheticSpec::tiny(4);
        let (tr, _, _) = spec.generate();
        let mut rng = StdRng::seed_from_u64(5);
        let out = Augment::standard().apply(&tr, &mut rng);
        assert_eq!(out.images.dims(), tr.images.dims());
        assert_eq!(out.labels, tr.labels);
        assert_eq!(out.classes, tr.classes);
    }

    #[test]
    fn deterministic_given_rng_state() {
        let spec = crate::synthetic::SyntheticSpec::tiny(6);
        let (tr, _, _) = spec.generate();
        let a = Augment::standard().apply(&tr, &mut StdRng::seed_from_u64(7));
        let b = Augment::standard().apply(&tr, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.images.data(), b.images.data());
        let c = Augment::standard().apply(&tr, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.images.data(), c.images.data());
    }
}
