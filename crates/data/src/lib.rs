//! # vc-data
//!
//! Dataset substrate: a procedural, CIFAR-like image-classification problem
//! plus the sharding machinery the paper's work generator uses to split a
//! training job into per-subset subtasks.
//!
//! ## Substitution note
//!
//! The paper benchmarks on CIFAR10 (50 000 train / 10 000 test 32×32×3
//! images, split into 50 shards of 3.9 MB each). This environment has no
//! network access, so [`synthetic::SyntheticSpec`] generates a dataset with
//! the properties VC-ASGD's dynamics actually depend on:
//!
//! * 10 visually-structured classes (spatially-correlated prototypes) that a
//!   small CNN can learn but not saturate — accuracy plateaus below 1.0 at a
//!   level set by the label/feature noise;
//! * per-shard class balance, so each subtask sees every class but only a
//!   small sample of each — producing the "partial learning / unlearning"
//!   effect the paper uses to explain the behaviour of α (§IV-C);
//! * deterministic generation from a seed, so every experiment is exactly
//!   reproducible.
//!
//! [`shard::ShardSet`] performs the work generator's dataset split and
//! reports realistic byte sizes that `vc-simnet` charges against instance
//! bandwidth, mirroring the paper's 3.9 MB `.npz` subsets.

pub mod augment;
pub mod dataset;
pub mod shard;
pub mod synthetic;

pub use augment::Augment;
pub use dataset::Dataset;
pub use shard::{DataShard, ShardSet};
pub use synthetic::SyntheticSpec;
