//! Dataset sharding — the work generator's split of a training job.
//!
//! The paper splits the 50 000-image CIFAR10 training set into 50 subsets of
//! 3.9 MB each; one epoch = 50 subtasks, one per shard. [`ShardSet`]
//! reproduces that split with contiguous class-balanced blocks, and a
//! binary codec whose byte length is what the simulated network transfers.

use crate::dataset::Dataset;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use vc_tensor::Tensor;

/// One training-data subset, the payload of one BOINC workunit.
#[derive(Clone, Debug, PartialEq)]
pub struct DataShard {
    /// Shard index within its [`ShardSet`].
    pub id: usize,
    /// The shard's samples.
    pub data: Dataset,
}

impl DataShard {
    /// Encoded size in bytes (what the client downloads).
    pub fn byte_size(&self) -> usize {
        self.encode().len()
    }

    /// Serializes the shard: header, dims, labels, pixels.
    pub fn encode(&self) -> Bytes {
        let d = &self.data;
        let mut buf = BytesMut::with_capacity(32 + d.images.numel() * 4 + d.len());
        buf.put_u32_le(0x5644_5331); // "VDS1"
        buf.put_u32_le(self.id as u32);
        buf.put_u32_le(d.classes as u32);
        buf.put_u32_le(d.images.dims().len() as u32);
        for &dim in d.images.dims() {
            buf.put_u32_le(dim as u32);
        }
        buf.put_u32_le(d.len() as u32);
        for &y in &d.labels {
            buf.put_u16_le(y as u16);
        }
        for &px in d.images.data() {
            buf.put_f32_le(px);
        }
        buf.freeze()
    }

    /// Deserializes a shard encoded by [`Self::encode`].
    pub fn decode(mut blob: &[u8]) -> Result<DataShard, String> {
        if blob.len() < 16 {
            return Err("shard blob too short".into());
        }
        let magic = blob.get_u32_le();
        if magic != 0x5644_5331 {
            return Err(format!("bad shard magic 0x{magic:08x}"));
        }
        let id = blob.get_u32_le() as usize;
        let classes = blob.get_u32_le() as usize;
        let rank = blob.get_u32_le() as usize;
        if rank > 8 || blob.len() < rank * 4 + 4 {
            return Err("corrupt shard header".into());
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(blob.get_u32_le() as usize);
        }
        let n = blob.get_u32_le() as usize;
        let numel: usize = dims.iter().product();
        if blob.len() < n * 2 + numel * 4 {
            return Err("shard blob truncated".into());
        }
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(blob.get_u16_le() as usize);
        }
        let mut pixels = Vec::with_capacity(numel);
        for _ in 0..numel {
            pixels.push(blob.get_f32_le());
        }
        Ok(DataShard {
            id,
            data: Dataset::new(Tensor::from_vec(pixels, &dims), labels, classes),
        })
    }
}

/// A complete split of a training set into `k` shards.
#[derive(Clone, Debug)]
pub struct ShardSet {
    shards: Vec<DataShard>,
}

impl ShardSet {
    /// Splits `train` into `k` shards of contiguous sample blocks.
    ///
    /// The synthetic generator interleaves classes round-robin, so a
    /// contiguous block is class-balanced — matching the paper's
    /// representative subsets. (A naive `i % k` assignment would be
    /// catastrophic here: whenever `k` is a multiple of the class count,
    /// every shard collapses to a single class and clients learn nothing
    /// generalizable.)
    pub fn split(train: &Dataset, k: usize) -> ShardSet {
        assert!(k > 0, "cannot split into zero shards");
        assert!(
            k <= train.len(),
            "more shards ({k}) than samples ({})",
            train.len()
        );
        let n = train.len();
        let base = n / k;
        let extra = n % k;
        let mut buckets: Vec<Vec<usize>> = Vec::with_capacity(k);
        let mut start = 0;
        for s in 0..k {
            let len = base + usize::from(s < extra);
            buckets.push((start..start + len).collect());
            start += len;
        }
        let shards = buckets
            .into_iter()
            .enumerate()
            .map(|(id, idx)| DataShard {
                id,
                data: train.select(&idx),
            })
            .collect();
        ShardSet { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when there are no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Access one shard.
    pub fn shard(&self, id: usize) -> &DataShard {
        &self.shards[id]
    }

    /// Iterate over all shards.
    pub fn iter(&self) -> impl Iterator<Item = &DataShard> {
        self.shards.iter()
    }

    /// Total samples across shards.
    pub fn total_samples(&self) -> usize {
        self.shards.iter().map(|s| s.data.len()).sum()
    }

    /// Mean encoded shard size in bytes.
    pub fn mean_byte_size(&self) -> usize {
        if self.shards.is_empty() {
            0
        } else {
            self.shards.iter().map(|s| s.byte_size()).sum::<usize>() / self.shards.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    fn train() -> Dataset {
        SyntheticSpec::tiny(1).generate().0
    }

    #[test]
    fn split_covers_every_sample_once() {
        let tr = train();
        let set = ShardSet::split(&tr, 7);
        assert_eq!(set.len(), 7);
        assert_eq!(set.total_samples(), tr.len());
        // Shard sizes differ by at most one.
        let sizes: Vec<usize> = set.iter().map(|s| s.data.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn shards_are_class_balanced() {
        // The degenerate case that motivated block splitting: k a multiple
        // of the class count. Every shard must still see every class.
        let tr = train(); // 4 classes, round-robin labels, n = 200
        for k in [4usize, 5, 8] {
            let set = ShardSet::split(&tr, k);
            for shard in set.iter() {
                let hist = shard.data.class_histogram();
                assert!(
                    hist.iter().all(|&c| c > 0),
                    "k={k}: shard missing a class: {hist:?}"
                );
            }
        }
    }

    #[test]
    fn split_is_contiguous_blocks() {
        let tr = train();
        let set = ShardSet::split(&tr, 3);
        // Shard 0 holds the first ceil(200/3) samples in order.
        assert_eq!(set.shard(0).data.labels[..4], tr.labels[..4]);
        let n0 = set.shard(0).data.len();
        assert_eq!(set.shard(1).data.labels[0], tr.labels[n0]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let tr = train();
        let set = ShardSet::split(&tr, 3);
        for shard in set.iter() {
            let blob = shard.encode();
            let back = DataShard::decode(&blob).unwrap();
            assert_eq!(&back, shard);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let tr = train();
        let shard = ShardSet::split(&tr, 2).shard(0).clone();
        let blob = shard.encode();
        assert!(DataShard::decode(&blob[..10]).is_err());
        let mut bad = blob.to_vec();
        bad[0] ^= 0xff;
        assert!(DataShard::decode(&bad).is_err());
        let cut = &blob[..blob.len() - 8];
        assert!(DataShard::decode(cut).is_err());
    }

    #[test]
    fn paper_scale_shard_bytes() {
        // CIFAR10: 50k images of 3x32x32 split 50 ways -> 1000 images/shard
        // -> ~12.3 MB raw f32; the paper's 3.9 MB reflects npz compression.
        // Our byte model is the raw size; the simulator's bandwidth
        // calibration accounts for the constant factor.
        let spec = SyntheticSpec {
            train_n: 1000,
            img: [3, 32, 32],
            classes: 10,
            ..SyntheticSpec::tiny(2)
        };
        let (tr, _, _) = spec.generate();
        let set = ShardSet::split(&tr, 1);
        let mb = set.mean_byte_size() as f64 / (1024.0 * 1024.0);
        assert!(mb > 11.0 && mb < 13.0, "{mb} MB");
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn rejects_overfine_split() {
        let tr = train();
        ShardSet::split(&tr, tr.len() + 1);
    }
}
