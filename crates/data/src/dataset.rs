//! Labelled image datasets.

use vc_tensor::Tensor;

/// A labelled dataset: images `[n, ch, h, w]` and integer labels.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Image tensor, `[n, ch, h, w]`.
    pub images: Tensor,
    /// Per-image class labels, each `< classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating invariants.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            images.dims()[0],
            labels.len(),
            "images/labels count mismatch"
        );
        assert!(
            labels.iter().all(|&y| y < classes),
            "label out of range for {classes} classes"
        );
        Dataset {
            images,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample dimensions (`[ch, h, w]`).
    pub fn sample_dims(&self) -> &[usize] {
        &self.images.dims()[1..]
    }

    /// Extracts the sub-dataset at `indices` (clones the selected rows).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let sample_len: usize = self.sample_dims().iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.sample_dims());
        Dataset {
            images: Tensor::from_vec(data, &dims),
            labels,
            classes: self.classes,
        }
    }

    /// Splits off the first `n` samples, returning `(head, tail)`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point {n} beyond dataset");
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (self.select(&head), self.select(&tail))
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &y in &self.labels {
            h[y] += 1;
        }
        h
    }

    /// Approximate in-memory/encoded size of this dataset's images in bytes
    /// (f32 samples + one byte per label). Drives simulated shard downloads.
    pub fn byte_size(&self) -> usize {
        self.images.numel() * 4 + self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 1, 2, 2]);
        Dataset::new(images, vec![0, 1, 0], 2)
    }

    #[test]
    fn invariants_enforced() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.sample_dims(), &[1, 2, 2]);
        assert_eq!(d.class_histogram(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn rejects_mismatched_labels() {
        Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_labels() {
        Dataset::new(Tensor::zeros(&[1, 1, 2, 2]), vec![5], 2);
    }

    #[test]
    fn select_clones_rows() {
        let d = tiny();
        let s = d.select(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 0]);
        assert_eq!(&s.images.data()[0..4], &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(&s.images.data()[4..8], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn split_at_partitions() {
        let d = tiny();
        let (a, b) = d.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(a.labels, vec![0]);
        assert_eq!(b.labels, vec![1, 0]);
    }

    #[test]
    fn byte_size_counts_floats_and_labels() {
        let d = tiny();
        assert_eq!(d.byte_size(), 12 * 4 + 3);
    }
}
