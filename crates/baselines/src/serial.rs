//! Single-instance synchronous training (the paper's Figure 6 baseline).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_data::SyntheticSpec;
use vc_nn::metrics::evaluate;
use vc_nn::ModelSpec;
use vc_optim::{train_minibatch, OptimizerSpec};
use vc_simnet::{table1, ComputeModel, InstanceSpec};

/// Configuration of the serial run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SerialConfig {
    /// Model architecture (must match the distributed run for Figure 6).
    pub model: ModelSpec,
    /// Dataset generator (same seed as the distributed run → same data).
    pub data: SyntheticSpec,
    /// Epochs to train.
    pub epochs: usize,
    /// Optimizer (paper: Adam, lr 0.001).
    pub optimizer: OptimizerSpec,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Instance the job runs on (paper: the server-class instance).
    pub instance: InstanceSpec,
    /// Effective cores a single synchronous training process exploits
    /// (TensorFlow intra-op parallelism on the 8-vCPU box).
    pub effective_cores: f64,
    /// Compute model shared with the fleet simulation, for calibration.
    pub compute: ComputeModel,
    /// Seed.
    pub seed: u64,
}

impl SerialConfig {
    /// The paper's serial baseline: same CIFAR-like job on the server
    /// instance.
    pub fn paper_default(seed: u64) -> Self {
        let data = SyntheticSpec::cifar_like(seed);
        let model = vc_nn::spec::small_cnn(&data.img, data.classes);
        SerialConfig {
            model,
            data,
            epochs: 18,
            optimizer: OptimizerSpec::paper_adam(),
            batch_size: 32,
            instance: table1::server(),
            effective_cores: 4.0,
            compute: ComputeModel::default(),
            seed,
        }
    }

    /// Simulated wall-clock seconds one full epoch takes: the work of all
    /// shards' subtasks executed back-to-back on this instance, sped up by
    /// the intra-op parallelism a dedicated box sustains.
    pub fn epoch_duration_s(&self, shards_equivalent: usize) -> f64 {
        let per_subtask = self.compute.base_subtask_s / self.instance.core_speed();
        shards_equivalent as f64 * per_subtask / self.effective_cores
    }
}

/// One epoch of the serial run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SerialEpoch {
    /// 1-based epoch.
    pub epoch: usize,
    /// Cumulative simulated time, hours.
    pub end_time_h: f64,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation accuracy after the epoch.
    pub val_acc: f32,
    /// Test accuracy after the epoch.
    pub test_acc: f32,
}

/// The serial run's output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SerialReport {
    /// Per-epoch series.
    pub epochs: Vec<SerialEpoch>,
    /// Total simulated time, hours.
    pub total_time_h: f64,
}

impl SerialReport {
    /// Validation accuracy at (or just before) `hours` of training — used
    /// to compare against the distributed curve at matched times.
    pub fn val_acc_at_hours(&self, hours: f64) -> Option<f32> {
        self.epochs
            .iter()
            .take_while(|e| e.end_time_h <= hours)
            .last()
            .map(|e| e.val_acc)
    }
}

/// Runs the serial synchronous baseline: real minibatch SGD over the full
/// training set, one pass per epoch, with simulated epoch durations.
pub fn run_serial(cfg: &SerialConfig) -> SerialReport {
    let (train, val, test) = cfg.data.generate();
    let mut model = cfg.model.build(cfg.seed);
    let mut opt = cfg.optimizer.build(model.param_count());
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(17));

    // The distributed job splits this dataset into 50 shards; time one
    // serial epoch as the equivalent 50 subtasks run back-to-back.
    let shards_equivalent = 50;
    let epoch_s = cfg.epoch_duration_s(shards_equivalent);

    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut now_s = 0.0;
    for e in 1..=cfg.epochs {
        let stats = train_minibatch(
            &mut model,
            &mut opt,
            &train.images,
            &train.labels,
            cfg.batch_size,
            1,
            5.0,
            &mut rng,
        );
        now_s += epoch_s;
        let (_, val_acc) = evaluate(&mut model, &val.images, &val.labels, 256);
        let (_, test_acc) = evaluate(&mut model, &test.images, &test.labels, 256);
        epochs.push(SerialEpoch {
            epoch: e,
            end_time_h: now_s / 3600.0,
            train_loss: stats.mean_loss,
            val_acc,
            test_acc,
        });
    }
    SerialReport {
        total_time_h: now_s / 3600.0,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> SerialConfig {
        let mut cfg = SerialConfig::paper_default(seed);
        cfg.data.train_n = 600;
        cfg.data.val_n = 150;
        cfg.data.test_n = 150;
        cfg.data.noise = 1.0;
        cfg.data.label_noise = 0.0;
        cfg.model = vc_nn::spec::mlp(&cfg.data.img, 32, cfg.data.classes);
        cfg.epochs = 4;
        cfg
    }

    #[test]
    fn serial_learns() {
        let r = run_serial(&tiny_cfg(1));
        assert_eq!(r.epochs.len(), 4);
        let first = r.epochs.first().unwrap();
        let last = r.epochs.last().unwrap();
        assert!(last.val_acc > 0.3, "val acc {}", last.val_acc);
        assert!(last.train_loss < first.train_loss);
    }

    #[test]
    fn simulated_clock_is_uniform_per_epoch() {
        let r = run_serial(&tiny_cfg(2));
        let d1 = r.epochs[1].end_time_h - r.epochs[0].end_time_h;
        let d2 = r.epochs[3].end_time_h - r.epochs[2].end_time_h;
        assert!((d1 - d2).abs() < 1e-9);
        assert!(r.total_time_h > 0.0);
    }

    #[test]
    fn epoch_duration_is_paper_scale() {
        // 50 subtasks of ~2.4 min on a 2.3 GHz box over 4 effective cores:
        // ~29 minutes per serial epoch, so ~17 epochs fit in the 8.4 h
        // window of Figure 6.
        let cfg = SerialConfig::paper_default(0);
        let epoch_min = cfg.epoch_duration_s(50) / 60.0;
        assert!(epoch_min > 20.0 && epoch_min < 40.0, "{epoch_min} min");
    }

    #[test]
    fn val_acc_at_hours_interpolates_left() {
        let r = run_serial(&tiny_cfg(3));
        let t1 = r.epochs[0].end_time_h;
        assert_eq!(r.val_acc_at_hours(t1), Some(r.epochs[0].val_acc));
        assert_eq!(r.val_acc_at_hours(t1 * 0.5), None, "before first epoch");
        assert_eq!(
            r.val_acc_at_hours(1e9),
            Some(r.epochs.last().unwrap().val_acc)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_serial(&tiny_cfg(4));
        let b = run_serial(&tiny_cfg(4));
        assert_eq!(a, b);
    }
}
