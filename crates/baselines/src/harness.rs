//! Shared round-based asynchronous harness for the ASGD baselines.
//!
//! The three asynchronous baselines (Downpour, EASGD, DC-ASGD) share one
//! execution skeleton: `n` clients each own a slice of the sharded training
//! set; at every round one client is sampled (proportionally to its speed,
//! so heterogeneity creates staleness) to perform its scheme-specific
//! communication with the server. Accuracy is recorded against the *number
//! of server updates*, the scale on which update rules are comparable.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vc_data::{Dataset, ShardSet, SyntheticSpec};
use vc_nn::metrics::evaluate;
use vc_nn::{ModelSpec, Sequential};

/// One point of an accuracy-vs-updates curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsyncPoint {
    /// Server updates applied so far.
    pub updates: usize,
    /// Validation accuracy of the server parameters.
    pub val_acc: f32,
}

/// A labelled baseline curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsyncCurve {
    /// Scheme label, e.g. `"downpour(n_push=4)"`.
    pub label: String,
    /// Recorded points.
    pub points: Vec<AsyncPoint>,
    /// Final validation accuracy.
    pub final_val_acc: f32,
    /// Client pushes that were dropped by fault injection.
    pub dropped_updates: usize,
}

/// The shared data/model/fleet environment the baselines run in.
pub struct AsyncEnv {
    /// Per-client training data (client i owns shard i of `clients`).
    pub client_data: Vec<Dataset>,
    /// Validation subset used for curve points.
    pub val: Dataset,
    /// Model template.
    pub model_spec: ModelSpec,
    /// A model instance for evaluation.
    pub eval_model: Sequential,
    /// Initial (shared) parameter vector.
    pub init_params: Vec<f32>,
    /// Relative client speeds; sampling weight per round.
    pub speeds: Vec<f64>,
    /// Master RNG.
    pub rng: StdRng,
}

/// Environment parameters shared by every baseline config.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsyncEnvConfig {
    /// Dataset generator.
    pub data: SyntheticSpec,
    /// Model architecture.
    pub model: ModelSpec,
    /// Number of clients.
    pub clients: usize,
    /// Heterogeneity: speed of the fastest client relative to the slowest
    /// (1.0 = homogeneous). Speeds interpolate linearly in between.
    pub speed_spread: f64,
    /// Probability a client push is lost (fault injection; the VC setting).
    pub drop_prob: f64,
    /// Validation samples used per curve point.
    pub val_eval_n: usize,
    /// Record a point every this many server updates.
    pub eval_every: usize,
    /// Seed.
    pub seed: u64,
}

impl AsyncEnvConfig {
    /// A small, learnable environment for tests and quick benches.
    pub fn small(seed: u64) -> Self {
        let mut data = SyntheticSpec::cifar_like(seed);
        data.train_n = 600;
        data.val_n = 150;
        data.test_n = 100;
        data.noise = 1.0;
        data.label_noise = 0.0;
        let model = vc_nn::spec::mlp(&data.img, 32, data.classes);
        AsyncEnvConfig {
            data,
            model,
            clients: 4,
            speed_spread: 3.0,
            drop_prob: 0.0,
            val_eval_n: 150,
            eval_every: 8,
            seed,
        }
    }

    /// Builds the runtime environment.
    pub fn build(&self) -> AsyncEnv {
        assert!(self.clients >= 1);
        assert!(self.speed_spread >= 1.0);
        let (train, val, _) = self.data.generate();
        let shards = ShardSet::split(&train, self.clients);
        let client_data = (0..self.clients)
            .map(|i| shards.shard(i).data.clone())
            .collect();
        let val_eval = val.select(&(0..self.val_eval_n.min(val.len())).collect::<Vec<_>>());
        let eval_model = self.model.build(self.seed);
        let init_params = eval_model.params_flat();
        let speeds = (0..self.clients)
            .map(|i| {
                if self.clients == 1 {
                    1.0
                } else {
                    1.0 + (self.speed_spread - 1.0) * i as f64 / (self.clients - 1) as f64
                }
            })
            .collect();
        AsyncEnv {
            client_data,
            val: val_eval,
            model_spec: self.model.clone(),
            eval_model,
            init_params,
            speeds,
            rng: StdRng::seed_from_u64(self.seed.wrapping_mul(0x5851_F42D).wrapping_add(29)),
        }
    }
}

impl AsyncEnv {
    /// Samples which client acts this round (faster clients act more often
    /// — the source of staleness for the slow ones).
    pub fn sample_client(&mut self) -> usize {
        let dist = WeightedIndex::new(&self.speeds).expect("positive speeds");
        dist.sample(&mut self.rng)
    }

    /// Whether this round's push is dropped (fault injection).
    pub fn drops(&mut self, drop_prob: f64) -> bool {
        drop_prob > 0.0 && self.rng.gen::<f64>() < drop_prob
    }

    /// Validation accuracy of a parameter vector.
    pub fn score(&mut self, params: &[f32]) -> f32 {
        self.eval_model.set_params_flat(params);
        let (_, acc) = evaluate(
            &mut self.eval_model,
            &self.val.images,
            &self.val.labels,
            256,
        );
        acc
    }

    /// A fresh model instance holding `params`.
    pub fn model_with(&self, params: &[f32]) -> Sequential {
        let mut m = self.model_spec.build(0);
        m.set_params_flat(params);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_with_per_client_shards() {
        let cfg = AsyncEnvConfig::small(1);
        let env = cfg.build();
        assert_eq!(env.client_data.len(), 4);
        let total: usize = env.client_data.iter().map(|d| d.len()).sum();
        assert_eq!(total, 600);
        assert_eq!(env.speeds.len(), 4);
        assert!((env.speeds[3] / env.speeds[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fast_clients_sampled_more() {
        let cfg = AsyncEnvConfig::small(2);
        let mut env = cfg.build();
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[env.sample_client()] += 1;
        }
        assert!(
            counts[3] > 2 * counts[0],
            "fastest {} vs slowest {}",
            counts[3],
            counts[0]
        );
    }

    #[test]
    fn drop_rate_matches_probability() {
        let cfg = AsyncEnvConfig::small(3);
        let mut env = cfg.build();
        let drops = (0..10_000).filter(|_| env.drops(0.25)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "{rate}");
        assert_eq!((0..100).filter(|_| env.drops(0.0)).count(), 0);
    }

    #[test]
    fn score_of_random_params_is_chancey() {
        let cfg = AsyncEnvConfig::small(4);
        let mut env = cfg.build();
        let p = env.init_params.clone();
        let acc = env.score(&p);
        assert!(acc < 0.45, "untrained accuracy {acc}");
    }

    #[test]
    fn single_client_env_is_valid() {
        let mut cfg = AsyncEnvConfig::small(5);
        cfg.clients = 1;
        let mut env = cfg.build();
        assert_eq!(env.sample_client(), 0);
    }
}
