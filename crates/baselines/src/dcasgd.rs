//! Delay-Compensated ASGD (Zheng et al., ICML 2017).

use crate::harness::{AsyncCurve, AsyncEnvConfig, AsyncPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_nn::{Layer, SoftmaxCrossEntropy};
use vc_tensor::Tensor;

/// DC-ASGD parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DcAsgdConfig {
    /// Shared environment.
    pub env: AsyncEnvConfig,
    /// Server learning rate applied to (compensated) gradients.
    pub lr: f32,
    /// Delay-compensation strength λ; 0 reduces to plain ASGD.
    pub lambda: f32,
    /// Total server updates.
    pub updates: usize,
    /// Mini-batch size for the client gradient.
    pub batch_size: usize,
}

impl DcAsgdConfig {
    /// A small configuration for tests.
    pub fn small(seed: u64) -> Self {
        DcAsgdConfig {
            env: AsyncEnvConfig::small(seed),
            lr: 0.05,
            lambda: 0.04,
            updates: 96,
            batch_size: 32,
        }
    }
}

/// Runs DC-ASGD. When sampled, a client computes one mini-batch gradient
/// `g` at the stale parameters `W_bak` it fetched on its previous turn; the
/// server applies the delay-compensated update
///
/// ```text
/// W ← W − lr·(g + λ · g ⊙ g ⊙ (W − W_bak))
/// ```
///
/// where `g ⊙ g` is the diagonal (outer-product) approximation of the
/// Hessian. The client then fetches the fresh `W` as its next `W_bak`.
/// Like Downpour, the scheme needs every client's gradient — §II-B notes it
/// is therefore not fault tolerant; the `drop_prob` fault injection shows
/// the effect.
pub fn run_dcasgd(cfg: &DcAsgdConfig) -> AsyncCurve {
    let mut env = cfg.env.build();
    let n = cfg.env.clients;
    let mut server = env.init_params.clone();
    // Each client's last-fetched parameter copy (the W_bak of the paper).
    let mut backup: Vec<Vec<f32>> = vec![server.clone(); n];
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|i| StdRng::seed_from_u64(cfg.env.seed.wrapping_add(900 + i as u64)))
        .collect();
    let mut cursors = vec![0usize; n];

    let mut points = Vec::new();
    let mut dropped = 0usize;
    for update in 1..=cfg.updates {
        let c = env.sample_client();
        // One mini-batch gradient at the stale copy.
        let data = &env.client_data[c];
        let bs = cfg.batch_size.min(data.len());
        let idx: Vec<usize> = (0..bs).map(|k| (cursors[c] + k) % data.len()).collect();
        cursors[c] = (cursors[c] + bs) % data.len();
        let _ = &mut rngs[c]; // reserved for future stochastic batch picks
        let sub = data.select(&idx);
        let mut model = env.model_with(&backup[c]);
        let logits = model.forward(&sub.images, true);
        let (_, dlogits) = SoftmaxCrossEntropy::loss_and_grad(&logits, &sub.labels);
        model.zero_grads_all();
        model.backward(&dlogits);
        let g = model.grads_flat();

        if env.drops(cfg.env.drop_prob) {
            dropped += 1;
        } else {
            for i in 0..server.len() {
                let gi = g[i];
                let comp = cfg.lambda * gi * gi * (server[i] - backup[c][i]);
                server[i] -= cfg.lr * (gi + comp);
            }
        }
        // Fetch: the fresh server copy becomes the next backup.
        backup[c].copy_from_slice(&server);

        if update % cfg.env.eval_every == 0 || update == cfg.updates {
            let acc = env.score(&server);
            points.push(AsyncPoint {
                updates: update,
                val_acc: acc,
            });
        }
    }
    let final_val_acc = points.last().map(|p| p.val_acc).unwrap_or(0.0);
    AsyncCurve {
        label: format!("dc-asgd(lambda={})", cfg.lambda),
        points,
        final_val_acc,
        dropped_updates: dropped,
    }
}

/// A `Tensor`-level reference of the compensated update, used by tests.
pub fn dc_update_reference(w: &Tensor, w_bak: &Tensor, g: &Tensor, lr: f32, lambda: f32) -> Tensor {
    let drift = w.sub(w_bak);
    let comp = g.mul(g).mul(&drift).scale(lambda);
    w.sub(&g.add(&comp).scale(lr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcasgd_learns() {
        let curve = run_dcasgd(&DcAsgdConfig::small(1));
        assert!(
            curve.final_val_acc > 0.3,
            "final accuracy {}",
            curve.final_val_acc
        );
    }

    #[test]
    fn lambda_zero_is_plain_asgd_update() {
        let w = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let bak = Tensor::from_vec(vec![0.5, 2.5], &[2]);
        let g = Tensor::from_vec(vec![0.2, -0.1], &[2]);
        let plain = dc_update_reference(&w, &bak, &g, 0.1, 0.0);
        assert!((plain.data()[0] - (1.0 - 0.1 * 0.2)).abs() < 1e-6);
        assert!((plain.data()[1] - (2.0 + 0.1 * 0.1)).abs() < 1e-6);
    }

    #[test]
    fn compensation_pushes_against_drift() {
        // With positive drift (W ahead of the stale copy) and any gradient,
        // the compensation term g²·drift adds a pull back proportional to
        // the drift — shrinking the effective step when the update is very
        // stale.
        let w = Tensor::from_vec(vec![2.0], &[1]);
        let bak = Tensor::from_vec(vec![0.0], &[1]); // large staleness
        let g = Tensor::from_vec(vec![1.0], &[1]);
        let no_comp = dc_update_reference(&w, &bak, &g, 0.1, 0.0);
        let comp = dc_update_reference(&w, &bak, &g, 0.1, 0.5);
        assert!(comp.data()[0] < no_comp.data()[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_dcasgd(&DcAsgdConfig::small(2));
        let b = run_dcasgd(&DcAsgdConfig::small(2));
        assert_eq!(a, b);
    }
}
