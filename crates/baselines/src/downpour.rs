//! Downpour SGD (Dean et al., NeurIPS 2012).

use crate::harness::{AsyncCurve, AsyncEnvConfig, AsyncPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_optim::{train_minibatch, OptimizerSpec};

/// Downpour parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DownpourConfig {
    /// Shared environment.
    pub env: AsyncEnvConfig,
    /// Batches a client trains before pushing its accumulated delta
    /// (the paper's `n_push`).
    pub n_push: usize,
    /// Pushes between parameter re-fetches (the paper's `n_fetch`).
    pub n_fetch: usize,
    /// Total server updates to run.
    pub updates: usize,
    /// Client-side optimizer.
    pub optimizer: OptimizerSpec,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl DownpourConfig {
    /// A small configuration for tests.
    pub fn small(seed: u64) -> Self {
        DownpourConfig {
            env: AsyncEnvConfig::small(seed),
            n_push: 2,
            n_fetch: 1,
            updates: 64,
            optimizer: OptimizerSpec::Adam {
                lr: 2e-3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            batch_size: 32,
        }
    }
}

/// Runs Downpour SGD. Each sampled client trains `n_push` batches locally
/// and pushes the resulting parameter delta, which the server adds to the
/// central copy (the lock-free Hogwild-style accumulation of the original
/// system). Every `n_fetch` pushes the client refreshes its replica from
/// the server; between fetches it keeps training on stale parameters.
pub fn run_downpour(cfg: &DownpourConfig) -> AsyncCurve {
    let mut env = cfg.env.build();
    let n = cfg.env.clients;
    let mut server = env.init_params.clone();

    // Per-client replica state.
    let mut local: Vec<Vec<f32>> = vec![server.clone(); n];
    let mut pushes_since_fetch = vec![0usize; n];
    let mut opts: Vec<_> = (0..n).map(|_| cfg.optimizer.build(server.len())).collect();
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|i| StdRng::seed_from_u64(cfg.env.seed.wrapping_add(100 + i as u64)))
        .collect();

    let mut points = Vec::new();
    let mut dropped = 0usize;
    for update in 1..=cfg.updates {
        let c = env.sample_client();
        // Fetch policy: refresh the replica every n_fetch pushes.
        if pushes_since_fetch[c] == 0 {
            local[c].copy_from_slice(&server);
        }
        let before = local[c].clone();
        let mut model = env.model_with(&local[c]);
        let data = &env.client_data[c];
        // n_push local batches: approximated as one shuffled pass capped at
        // n_push * batch_size samples by training on a subset selection.
        let take = (cfg.n_push * cfg.batch_size).min(data.len());
        let idx: Vec<usize> = (0..take).collect();
        let sub = data.select(&idx);
        train_minibatch(
            &mut model,
            &mut opts[c],
            &sub.images,
            &sub.labels,
            cfg.batch_size,
            1,
            5.0,
            &mut rngs[c],
        );
        local[c] = model.params_flat();

        // Push the delta unless the network loses it.
        if env.drops(cfg.env.drop_prob) {
            dropped += 1;
        } else {
            for ((s, a), b) in server.iter_mut().zip(&local[c]).zip(&before) {
                *s += a - b;
            }
        }
        pushes_since_fetch[c] = (pushes_since_fetch[c] + 1) % cfg.n_fetch.max(1);

        if update % cfg.env.eval_every == 0 || update == cfg.updates {
            let acc = env.score(&server);
            points.push(AsyncPoint {
                updates: update,
                val_acc: acc,
            });
        }
    }
    let final_val_acc = points.last().map(|p| p.val_acc).unwrap_or(0.0);
    AsyncCurve {
        label: format!("downpour(push={},fetch={})", cfg.n_push, cfg.n_fetch),
        points,
        final_val_acc,
        dropped_updates: dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downpour_learns() {
        let cfg = DownpourConfig::small(1);
        let curve = run_downpour(&cfg);
        assert!(!curve.points.is_empty());
        assert!(
            curve.final_val_acc > 0.3,
            "final accuracy {}",
            curve.final_val_acc
        );
        assert_eq!(curve.dropped_updates, 0);
    }

    #[test]
    fn drops_hurt_downpour() {
        // §III-C: "Downpour SGD as-is can lead to consistent loss of
        // updates from a slow or disconnected client leading to suboptimal
        // training."
        let clean = run_downpour(&DownpourConfig::small(2));
        let mut lossy_cfg = DownpourConfig::small(2);
        lossy_cfg.env.drop_prob = 0.6;
        let lossy = run_downpour(&lossy_cfg);
        assert!(lossy.dropped_updates > 0);
        assert!(
            lossy.final_val_acc <= clean.final_val_acc + 0.05,
            "dropping updates should not help: {} vs {}",
            lossy.final_val_acc,
            clean.final_val_acc
        );
    }

    #[test]
    fn curve_points_follow_eval_schedule() {
        let mut cfg = DownpourConfig::small(3);
        cfg.updates = 32;
        cfg.env.eval_every = 8;
        let curve = run_downpour(&cfg);
        let at: Vec<usize> = curve.points.iter().map(|p| p.updates).collect();
        assert_eq!(at, vec![8, 16, 24, 32]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_downpour(&DownpourConfig::small(4));
        let b = run_downpour(&DownpourConfig::small(4));
        assert_eq!(a, b);
    }
}
