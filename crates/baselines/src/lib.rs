//! # vc-baselines
//!
//! The comparison points the paper measures against or positions VC-ASGD
//! relative to:
//!
//! * [`serial`] — **single-instance synchronous training** on the server-
//!   class instance: the paper's "best possible performance baseline"
//!   (Figure 6). Real training with a simulated clock calibrated to the
//!   same compute model as the fleet.
//! * [`downpour`] — **Downpour SGD** (Dean et al.): clients push gradients
//!   every `n_push` batches and fetch fresh server parameters every
//!   `n_fetch`; the server applies gradients Hogwild-style. Not fault
//!   tolerant (a lost client's gradients are simply gone), which §III-C
//!   cites as its disqualifier for VC fleets.
//! * [`easgd`] — **asynchronous Elastic Averaging SGD** (Zhang et al.):
//!   persistent local replicas coupled to the center by an elastic term
//!   with moving rate β. The paper's α = 0.999 experiment is the VC-ASGD
//!   analog of EASGD's β = 0.001.
//! * [`dcasgd`] — **Delay-Compensated ASGD** (Zheng et al.): gradient
//!   updates corrected with a diagonal Hessian approximation
//!   `λ·g⊙g⊙(W − W_backup)`.
//!
//! The three asynchronous baselines run on the *same* sharded synthetic
//! dataset and model as VC-ASGD, through a common round-based asynchronous
//! harness ([`harness`]) that models staleness explicitly, so the ablation
//! benches can compare update rules at equal update budgets.

pub mod dcasgd;
pub mod downpour;
pub mod easgd;
pub mod harness;
pub mod serial;

pub use dcasgd::DcAsgdConfig;
pub use downpour::DownpourConfig;
pub use easgd::EasgdConfig;
pub use harness::{AsyncCurve, AsyncPoint};
pub use serial::{SerialConfig, SerialEpoch, SerialReport};
