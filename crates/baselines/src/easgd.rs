//! Asynchronous Elastic Averaging SGD (Zhang, Choromanska & LeCun, 2015).

use crate::harness::{AsyncCurve, AsyncEnvConfig, AsyncPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_optim::{train_minibatch, OptimizerSpec};

/// EASGD parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EasgdConfig {
    /// Shared environment.
    pub env: AsyncEnvConfig,
    /// Local batches between elastic synchronizations (the paper's τ).
    pub tau: usize,
    /// Moving rate β: the elastic coupling strength. The VC-ASGD analogy
    /// in §IV-C maps β = 0.001 onto α = 0.999.
    pub beta: f32,
    /// Total elastic synchronizations (server updates) to run.
    pub updates: usize,
    /// Client-side optimizer.
    pub optimizer: OptimizerSpec,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl EasgdConfig {
    /// A small configuration for tests.
    pub fn small(seed: u64) -> Self {
        EasgdConfig {
            env: AsyncEnvConfig::small(seed),
            tau: 2,
            beta: 0.5,
            updates: 64,
            optimizer: OptimizerSpec::Adam {
                lr: 2e-3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            batch_size: 32,
        }
    }
}

/// Runs asynchronous EASGD. Each client keeps a *persistent* local replica
/// `x_i`; when sampled it trains `tau` batches, then performs the elastic
/// update with the center `W`:
///
/// ```text
/// diff = x_i − W;   x_i ← x_i − β·diff;   W ← W + β·diff
/// ```
///
/// Note the difference from VC-ASGD: the client replica persists across
/// rounds and is *pulled toward* the center rather than re-seeded from it —
/// which requires clients to stay alive, the fault-tolerance objection of
/// §III-C. A dropped synchronization here skips both sides of the update.
pub fn run_easgd(cfg: &EasgdConfig) -> AsyncCurve {
    let mut env = cfg.env.build();
    let n = cfg.env.clients;
    let mut center = env.init_params.clone();
    let mut local: Vec<Vec<f32>> = vec![center.clone(); n];
    let mut opts: Vec<_> = (0..n).map(|_| cfg.optimizer.build(center.len())).collect();
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|i| StdRng::seed_from_u64(cfg.env.seed.wrapping_add(500 + i as u64)))
        .collect();

    let mut points = Vec::new();
    let mut dropped = 0usize;
    for update in 1..=cfg.updates {
        let c = env.sample_client();
        let mut model = env.model_with(&local[c]);
        let data = &env.client_data[c];
        let take = (cfg.tau * cfg.batch_size).min(data.len());
        let sub = data.select(&(0..take).collect::<Vec<_>>());
        train_minibatch(
            &mut model,
            &mut opts[c],
            &sub.images,
            &sub.labels,
            cfg.batch_size,
            1,
            5.0,
            &mut rngs[c],
        );
        local[c] = model.params_flat();

        if env.drops(cfg.env.drop_prob) {
            dropped += 1;
        } else {
            for (x, w) in local[c].iter_mut().zip(center.iter_mut()) {
                let diff = *x - *w;
                *x -= cfg.beta * diff;
                *w += cfg.beta * diff;
            }
        }

        if update % cfg.env.eval_every == 0 || update == cfg.updates {
            let acc = env.score(&center);
            points.push(AsyncPoint {
                updates: update,
                val_acc: acc,
            });
        }
    }
    let final_val_acc = points.last().map(|p| p.val_acc).unwrap_or(0.0);
    AsyncCurve {
        label: format!("easgd(tau={},beta={})", cfg.tau, cfg.beta),
        points,
        final_val_acc,
        dropped_updates: dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easgd_learns() {
        let curve = run_easgd(&EasgdConfig::small(1));
        assert!(
            curve.final_val_acc > 0.3,
            "final accuracy {}",
            curve.final_val_acc
        );
    }

    #[test]
    fn tiny_moving_rate_freezes_center() {
        // β = 0.001 (the α = 0.999 analog): the center barely moves — the
        // §IV-C observation that EASGD's settings fail in a VC setting.
        let mut cfg = EasgdConfig::small(2);
        cfg.beta = 0.001;
        let slow = run_easgd(&cfg);
        let mut cfg_fast = EasgdConfig::small(2);
        cfg_fast.beta = 0.5;
        let fast = run_easgd(&cfg_fast);
        assert!(
            slow.final_val_acc < fast.final_val_acc,
            "beta=0.001 {} should trail beta=0.5 {}",
            slow.final_val_acc,
            fast.final_val_acc
        );
    }

    #[test]
    fn elastic_update_is_symmetric() {
        // After one elastic exchange, x and W move toward each other by the
        // same amount.
        let x0 = 1.0f32;
        let w0 = 0.0f32;
        let beta = 0.3f32;
        let diff = x0 - w0;
        let x1 = x0 - beta * diff;
        let w1 = w0 + beta * diff;
        assert!((x1 - 0.7).abs() < 1e-6);
        assert!((w1 - 0.3).abs() < 1e-6);
        assert!(((x1 - w1) - (1.0 - 2.0 * beta) * diff).abs() < 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_easgd(&EasgdConfig::small(3));
        let b = run_easgd(&EasgdConfig::small(3));
        assert_eq!(a, b);
    }
}
