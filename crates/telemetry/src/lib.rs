//! # vc-telemetry
//!
//! Observability substrate for the vc-dl workspace: a lock-cheap metrics
//! registry, a structured event/span layer, and a per-run flight
//! recorder — with zero external dependencies beyond the vendored shims.
//!
//! The three pieces share one [`Telemetry`] handle, cloned across
//! threads:
//!
//! - **Metrics** ([`Registry`]): counters, gauges, and fixed-bucket
//!   histograms with merge, Prometheus text exposition
//!   ([`Registry::render_prometheus`]) and a serde JSON snapshot
//!   ([`Registry::snapshot`]).
//! - **Events & spans** ([`event!`], [`span!`]): levelled, timestamped,
//!   `key=value`-structured. Timestamps come from a pluggable
//!   [`TimeSource`] — wall clock on OS threads, the `VirtualClock` under
//!   deterministic simulation — so DST recorder output replays
//!   byte-identically.
//! - **Flight recorder** ([`FlightRecorder`]): a bounded ring of recent
//!   events, dumped to JSONL on panic ([`install_panic_dump`]), on
//!   coordinator finalize, and on a failing DST seed.
//!
//! The stderr echo is gated by the `VC_LOG` env var (`error` … `trace`,
//! or `off`); recording into the ring is unconditional so post-mortem
//! dumps are complete regardless of verbosity.

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use event::{Event, FieldValue, Level, Span, Telemetry, TimeSource, WallTime};
pub use metrics::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, HistogramSnapshot,
    Registry, RegistrySnapshot,
};
pub use recorder::FlightRecorder;
pub use trace::{chrome_trace_json, span_id, TraceStage, TRACE_SPAN};

/// Installs a panic hook that dumps `tel`'s flight recorder to `path`
/// (JSONL) before delegating to the previous hook. Call once per
/// process, from the binary that owns the run.
pub fn install_panic_dump(tel: &Telemetry, path: impl Into<std::path::PathBuf>) {
    let tel = tel.clone();
    let path = path.into();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        match tel.recorder().dump_to_file(&path) {
            Ok(p) => eprintln!("vc-telemetry: flight recorder dumped to {}", p.display()),
            Err(e) => eprintln!("vc-telemetry: flight recorder dump failed: {e}"),
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_expand_with_and_without_fields() {
        let tel = Telemetry::with_echo(32, None);
        event!(tel, Info, "epoch_finished", epoch = 2_u64, acc = 0.5_f64);
        event!(tel, Warn, "bare");
        {
            let _s = span!(tel, Debug, "assimilate", wu = 7_u64).with_histogram("assim_s");
        }
        let evs = tel.recorder().events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].name, "epoch_finished");
        assert_eq!(evs[0].field("epoch"), Some(&FieldValue::U64(2)));
        assert_eq!(evs[1].name, "bare");
        assert!(evs[1].fields.is_empty());
        assert_eq!(evs[2].name, "assimilate");
        assert!(evs[2].field("dur_s").is_some());
        assert_eq!(tel.registry().histogram("assim_s").snapshot().count, 1);
    }

    #[test]
    fn handle_is_shared_across_clones_and_threads() {
        let tel = Telemetry::with_echo(64, None);
        let mut joins = Vec::new();
        for t in 0..4_u64 {
            let tel = tel.clone();
            joins.push(std::thread::spawn(move || {
                tel.registry().counter("ops").add(t + 1);
                event!(tel, Info, "thread_done", t = t);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(tel.registry().snapshot().counter("ops"), Some(10));
        assert_eq!(tel.recorder().count_named("thread_done"), 4);
    }
}
