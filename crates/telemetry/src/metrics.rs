//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Everything here is lock-cheap on the hot path: counters and histogram
//! buckets are atomics, the registry's lock is only taken to *look up* a
//! metric handle (callers cache the returned [`Arc`]), and snapshots copy
//! the atomics without stopping writers. Exposition comes in two formats:
//! Prometheus text ([`Registry::render_prometheus`]) and a serde-friendly
//! [`RegistrySnapshot`] for JSON artifacts.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `bounds[i]` is bucket `i`'s inclusive upper
/// edge, plus one implicit `+Inf` overflow bucket. Observation is two
/// relaxed atomic adds (bucket + count) and one CAS loop (the `f64` sum).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given (strictly increasing, finite) upper
    /// bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Default bounds for latency-in-seconds histograms: 1 µs to 10 s.
    pub fn latency_bounds() -> Vec<f64> {
        vec![
            1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
            2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
        ]
    }

    /// Default bounds for version-count histograms (e.g. staleness measured
    /// in `server_version − read_version`).
    pub fn version_bounds() -> Vec<f64> {
        vec![
            0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 128.0,
        ]
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Copies the current state (writers keep going; the copy is
    /// per-atomic consistent, not a global freeze).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with percentile estimation and
/// merging (for aggregating across runs or shards).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket edges (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: Vec<f64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        HistogramSnapshot {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the covering bucket, the standard Prometheus
    /// `histogram_quantile` scheme. Observations in the `+Inf` overflow
    /// bucket report the last finite bound. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank && c > 0 {
                if i >= self.bounds.len() {
                    return *self.bounds.last().expect("bounds are never empty");
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let below = cum - c;
                return lo + (hi - lo) * ((rank - below) as f64 / c as f64);
            }
        }
        *self.bounds.last().expect("bounds are never empty")
    }

    /// Adds `other`'s observations into `self`. Fails when the bucket
    /// layouts differ — merging is only meaningful bucket-by-bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "cannot merge histograms with different bounds ({} vs {})",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }
}

impl Default for HistogramSnapshot {
    /// An empty snapshot with no finite buckets (only the `+Inf` overflow),
    /// matching [`HistogramSnapshot::empty`]'s invariants.
    fn default() -> Self {
        HistogramSnapshot::empty(Vec::new())
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
    help: Vec<(String, String)>,
}

/// A named collection of metrics. Lookup takes the registry lock once;
/// callers on hot paths cache the returned handles.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<RegistryInner>,
}

fn get_or_insert<T>(
    list: &mut Vec<(String, Arc<T>)>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some((_, m)) = list.iter().find(|(n, _)| n == name) {
        return m.clone();
    }
    let m = Arc::new(make());
    list.push((name.to_string(), m.clone()));
    m
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some((_, c)) = self.inner.read().counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        get_or_insert(&mut self.inner.write().counters, name, Counter::default)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some((_, g)) = self.inner.read().gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        get_or_insert(&mut self.inner.write().gauges, name, Gauge::default)
    }

    /// The histogram named `name` with [`Histogram::latency_bounds`],
    /// created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::latency_bounds)
    }

    /// The histogram named `name`, created on first use with the bounds
    /// `make_bounds` produces (an existing histogram keeps its bounds).
    pub fn histogram_with(
        &self,
        name: &str,
        make_bounds: impl FnOnce() -> Vec<f64>,
    ) -> Arc<Histogram> {
        if let Some((_, h)) = self.inner.read().histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        get_or_insert(&mut self.inner.write().histograms, name, || {
            Histogram::new(make_bounds())
        })
    }

    /// A point-in-time copy of every metric, sorted by name (so two
    /// snapshots of identical state serialize identically).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let g = self.inner.read();
        let mut counters: Vec<CounterSample> = g
            .counters
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        let mut gauges: Vec<GaugeSample> = g
            .gauges
            .iter()
            .map(|(n, v)| GaugeSample {
                name: n.clone(),
                value: v.get(),
            })
            .collect();
        let mut histograms: Vec<HistogramSample> = g
            .histograms
            .iter()
            .map(|(n, h)| HistogramSample {
                name: n.clone(),
                histogram: h.snapshot(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Registers free-text help for a metric name, emitted as the
    /// `# HELP` line in the Prometheus exposition. Metrics without a
    /// registered description get a generic fallback.
    pub fn describe(&self, name: &str, help: &str) {
        let mut g = self.inner.write();
        if let Some((_, h)) = g.help.iter_mut().find(|(n, _)| n == name) {
            help.clone_into(h);
        } else {
            g.help.push((name.to_string(), help.to_string()));
        }
    }

    /// The registered help text for `name`, if any.
    pub fn help(&self, name: &str) -> Option<String> {
        self.inner
            .read()
            .help
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
    }

    /// Prometheus text exposition of every metric, sorted by name, with
    /// `# HELP` / `# TYPE` metadata and names sanitized to the exposition
    /// charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let help_line = |out: &mut String, raw: &str, name: &str| {
            let text = self
                .help(raw)
                .unwrap_or_else(|| format!("vc-dl metric {raw}"));
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&text)));
        };
        for c in &snap.counters {
            let name = sanitize(&c.name);
            help_line(&mut out, &c.name, &name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for g in &snap.gauges {
            let name = sanitize(&g.name);
            help_line(&mut out, &g.name, &name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
        }
        for h in &snap.histograms {
            let name = sanitize(&h.name);
            help_line(&mut out, &h.name, &name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in h.histogram.counts.iter().enumerate() {
                cum += c;
                let le = match h.histogram.bounds.get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.histogram.sum));
            out.push_str(&format!("{name}_count {}\n", h.histogram.count));
        }
        out
    }
}

/// Maps an arbitrary metric name into the Prometheus exposition charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every disallowed character becomes `_`,
/// and a leading digit (or an empty name) gains a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escapes help text per the Prometheus text format: `\` and newlines.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// The histogram state.
    pub histogram: HistogramSnapshot,
}

/// A serializable copy of a whole [`Registry`], name-sorted.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl RegistrySnapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("ops");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("ops").get(), 5, "same name, same counter");
        let g = reg.gauge("depth");
        g.set(2.5);
        assert_eq!(reg.gauge("depth").get(), 2.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
        let h = Histogram::new(vec![1.0, 2.0, 5.0]);
        // Exactly on an edge lands in that bucket (le semantics)…
        h.observe(1.0);
        h.observe(2.0);
        // …just above an edge spills into the next…
        h.observe(1.0000001);
        // …and past the last edge lands in +Inf.
        h.observe(100.0);
        h.observe(0.0);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 104.0000001).abs() < 1e-6);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        // 10 observations uniform in the (1, 2] bucket.
        for _ in 0..10 {
            h.observe(1.5);
        }
        let s = h.snapshot();
        // Median rank 5 of 10 → 50% through the (1, 2] bucket → 1.5.
        assert!((s.quantile(0.5) - 1.5).abs() < 1e-9);
        assert!(
            (s.quantile(1.0) - 2.0).abs() < 1e-9,
            "p100 is the bucket edge"
        );
        assert!((s.quantile(0.1) - 1.1).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::empty(vec![1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_of_overflow_bucket_reports_last_bound() {
        let h = Histogram::new(vec![1.0]);
        h.observe(50.0);
        assert_eq!(h.snapshot().quantile(0.99), 1.0);
    }

    #[test]
    fn merge_requires_identical_bounds_and_adds() {
        let a = Histogram::new(vec![1.0, 2.0]);
        a.observe(0.5);
        a.observe(1.5);
        let b = Histogram::new(vec![1.0, 2.0]);
        b.observe(1.5);
        b.observe(9.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot()).unwrap();
        assert_eq!(m.counts, vec![1, 2, 1]);
        assert_eq!(m.count, 4);
        assert!((m.sum - 12.5).abs() < 1e-9);
        assert!((m.mean() - 3.125).abs() < 1e-9);

        let mut odd = HistogramSnapshot::empty(vec![3.0]);
        assert!(odd.merge(&b.snapshot()).is_err(), "bounds mismatch refused");
    }

    #[test]
    fn exposition_format_golden() {
        let reg = Registry::new();
        reg.counter("vc_ops_total").add(3);
        reg.describe("vc_ops_total", "total ops\nmulti-line");
        reg.gauge("queue depth").set(1.5);
        let h = reg.histogram_with("lat_s", || vec![0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.75);
        h.observe(2.0);
        // Counters render before gauges before histograms; every series
        // gets # HELP (registered text, newline-escaped, or a fallback)
        // and # TYPE; bucket counts are cumulative with an explicit +Inf
        // edge plus _sum/_count; names are sanitized to the Prometheus
        // charset.
        let expected = "\
# HELP vc_ops_total total ops\\nmulti-line
# TYPE vc_ops_total counter
vc_ops_total 3
# HELP queue_depth vc-dl metric queue depth
# TYPE queue_depth gauge
queue_depth 1.5
# HELP lat_s vc-dl metric lat_s
# TYPE lat_s histogram
lat_s_bucket{le=\"0.5\"} 1
lat_s_bucket{le=\"1\"} 2
lat_s_bucket{le=\"+Inf\"} 3
lat_s_sum 3
lat_s_count 3
";
        assert_eq!(reg.render_prometheus(), expected);
    }

    #[test]
    fn exposition_sanitizes_hostile_names() {
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize("has space-and.dots"), "has_space_and_dots");
        assert_eq!(sanitize("9starts_with_digit"), "_9starts_with_digit");
        assert_eq!(sanitize(""), "_");
        let reg = Registry::new();
        reg.counter("2xx responses").add(1);
        let text = reg.render_prometheus();
        assert!(text.contains("_2xx_responses 1"), "{text}");
        assert!(text.contains("# TYPE _2xx_responses counter"), "{text}");
    }

    #[test]
    fn registry_snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.histogram_with("h", || vec![1.0]).observe(0.5);
        let s = reg.snapshot();
        assert_eq!(s.counters[0].name, "a");
        assert_eq!(s.counters[1].name, "b");
        assert_eq!(s.counter("a"), Some(2));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        // JSON roundtrip through the vendored serde.
        let json = serde_json::to_string(&s).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
