//! The flight recorder: a bounded ring of the most recent [`Event`]s.
//!
//! Every run keeps one. It costs a mutexed `VecDeque` push per event and
//! pays for itself the first time a chaos run fails: the ring dumps to a
//! JSONL artifact on panic (see `install_panic_dump`), on coordinator
//! finalize, and on a failing DST seed, giving a replayable record of the
//! last `capacity` events leading up to the failure.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::event::Event;

struct Ring {
    buf: VecDeque<Event>,
    dropped: u64,
}

/// A bounded ring buffer of recent events. When full, the oldest event is
/// evicted and counted in [`FlightRecorder::dropped`].
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "flight recorder needs capacity >= 1");
        FlightRecorder {
            cap: capacity,
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, event: Event) {
        let mut g = self.inner.lock();
        if g.buf.len() == self.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events evicted so far (0 means the dump is complete).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Number of retained events with the given name.
    pub fn count_named(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .buf
            .iter()
            .filter(|e| e.name == name)
            .count() as u64
    }

    /// Discards all retained events and resets the dropped count.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.buf.clear();
        g.dropped = 0;
    }

    /// The retained events as JSONL: one JSON-serialized [`Event`] per
    /// line, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::new();
        for ev in &g.buf {
            let line = serde_json::to_string(ev).expect("event serialization is infallible");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL dump to `path`, creating missing parent
    /// directories. When `path` already exists (two failing DST seeds
    /// dumping to the same artifact name, or a crashed run's leftovers)
    /// the dump goes to a sibling with a process-unique suffix instead of
    /// silently overwriting. Returns the path actually written.
    pub fn dump_to_file(&self, path: impl AsRef<Path>) -> io::Result<PathBuf> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let target = unique_sibling(path);
        std::fs::write(&target, self.dump_jsonl())?;
        Ok(target)
    }
}

/// `path` if it is free, else the first free sibling named
/// `<stem>.<pid>[-<n>][.<ext>]` — process-unique so concurrent test
/// processes never clobber each other, counter-suffixed so repeated dumps
/// within one process all survive.
fn unique_sibling(path: &Path) -> PathBuf {
    if !path.exists() {
        return path.to_path_buf();
    }
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dump".to_string());
    let ext = path.extension().map(|e| e.to_string_lossy().into_owned());
    let pid = std::process::id();
    let mut n = 0u64;
    loop {
        let mut name = if n == 0 {
            format!("{stem}.{pid}")
        } else {
            format!("{stem}.{pid}-{n}")
        };
        if let Some(e) = &ext {
            name.push('.');
            name.push_str(e);
        }
        let cand = path.with_file_name(name);
        if !cand.exists() {
            return cand;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FieldValue, Level};

    fn ev(i: u64) -> Event {
        Event {
            t_s: i as f64,
            level: Level::Info,
            name: format!("e{i}"),
            fields: vec![("i".to_string(), FieldValue::U64(i))],
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5 {
            rec.record(ev(i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        assert_eq!(rec.dropped(), 2, "two oldest events evicted");
        let names: Vec<String> = rec.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"], "oldest-first, newest kept");
        assert_eq!(rec.count_named("e3"), 1);
        assert_eq!(rec.count_named("e0"), 0, "evicted events are gone");

        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn jsonl_dump_is_one_parseable_event_per_line() {
        let rec = FlightRecorder::new(8);
        rec.record(ev(0));
        rec.record(ev(1));
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let back: Event = serde_json::from_str(line).unwrap();
            assert_eq!(back, ev(i as u64));
        }
    }

    #[test]
    fn dump_to_file_writes_the_jsonl() {
        let rec = FlightRecorder::new(4);
        rec.record(ev(7));
        let dir = std::env::temp_dir().join(format!("vc-rec-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("vc-telemetry-recorder-test.jsonl");
        let written = rec.dump_to_file(&path).unwrap();
        assert_eq!(written, path, "a free path is used verbatim");
        let content = std::fs::read_to_string(&written).unwrap();
        assert_eq!(content, rec.dump_jsonl());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_to_file_creates_parents_and_never_overwrites() {
        let rec = FlightRecorder::new(4);
        rec.record(ev(1));
        let dir = std::env::temp_dir().join(format!("vc-rec-uniq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Parent `deep/nested` does not exist yet.
        let path = dir.join("deep/nested/seed-42.jsonl");
        let first = rec.dump_to_file(&path).unwrap();
        assert_eq!(first, path);

        // A second dump to the same path must land elsewhere, leaving the
        // first artifact intact.
        let rec2 = FlightRecorder::new(4);
        rec2.record(ev(2));
        let second = rec2.dump_to_file(&path).unwrap();
        assert_ne!(second, first, "existing dump not overwritten");
        assert_eq!(std::fs::read_to_string(&first).unwrap(), rec.dump_jsonl());
        assert_eq!(std::fs::read_to_string(&second).unwrap(), rec2.dump_jsonl());
        let name = second.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("seed-42.") && name.ends_with(".jsonl"),
            "suffix preserves stem and extension: {name}"
        );

        // And a third still lands on a fresh name.
        let third = rec2.dump_to_file(&path).unwrap();
        assert_ne!(third, second);
        assert_ne!(third, first);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
