//! Structured events, spans, and the shared [`Telemetry`] handle.
//!
//! An [`Event`] is a timestamped, levelled name plus `key=value` fields.
//! Events flow into two sinks: an optional stderr echo (gated by the
//! `VC_LOG` level filter) and the per-run [`FlightRecorder`] ring. The
//! timestamp comes from a pluggable [`TimeSource`] so the same call sites
//! emit wall-clock times on OS threads and virtual-clock times under
//! deterministic simulation.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, Registry};
use crate::recorder::FlightRecorder;

/// Severity of an [`Event`]. Ordered from most to least severe, so an
/// event passes a threshold filter when `event.level <= threshold`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Unrecoverable or data-losing condition.
    Error,
    /// Something went wrong but the run continues (default echo level).
    Warn,
    /// Run milestones: epoch rollover, checkpoints, kills, respawns.
    Info,
    /// Per-workunit traffic: assignments, results, assimilations.
    Debug,
    /// High-volume details (per-store-op and finer).
    Trace,
}

impl Level {
    /// Parses `"error" | "warn" | "info" | "debug" | "trace"` (any case).
    /// Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed field value. Constructed via `From` so the `event!` / `span!`
/// macros accept bare literals of the common types.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (durations, accuracies).
    F64(f64),
    /// Free-form text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event: a timestamp in seconds (wall or virtual), a
/// level, a name, and ordered `key=value` fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Seconds since the run's time origin.
    pub t_s: f64,
    /// Severity.
    pub level: Level,
    /// Event name (e.g. `worker_kill`, `checkpoint_written`).
    pub name: String,
    /// Ordered fields; the vendored serde maps `(String, FieldValue)`
    /// pairs natively, so no map type is needed.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12.6}] {:5} {}", self.t_s, self.level, self.name)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Where timestamps come from. Implemented by the runtime's wall clock
/// and by the DST virtual clock, so recorder output is deterministic in
/// simulation.
pub trait TimeSource: Send + Sync {
    /// Seconds since the run's time origin.
    fn now_s(&self) -> f64;
}

/// The default [`TimeSource`]: monotonic wall time since construction.
#[derive(Clone, Copy, Debug)]
pub struct WallTime {
    start: Instant,
}

impl WallTime {
    /// A wall-time source anchored at "now".
    pub fn new() -> Self {
        WallTime {
            start: Instant::now(),
        }
    }
}

impl Default for WallTime {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallTime {
    fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Default flight-recorder capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 8192;

// Echo level is packed into an AtomicU8: 0 = off, otherwise level + 1.
fn pack_echo(level: Option<Level>) -> u8 {
    match level {
        None => 0,
        Some(l) => l as u8 + 1,
    }
}

fn unpack_echo(bits: u8) -> Option<Level> {
    match bits {
        0 => None,
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        _ => Some(Level::Trace),
    }
}

/// Reads `VC_LOG`: a level name enables echo at that level, `off` /
/// `none` / `0` disables it, anything else (or unset) yields `default`.
fn env_echo(default: Option<Level>) -> Option<Level> {
    match std::env::var("VC_LOG") {
        Ok(s) => {
            let s = s.trim().to_ascii_lowercase();
            if matches!(s.as_str(), "off" | "none" | "0") {
                None
            } else {
                Level::parse(&s).or(default)
            }
        }
        Err(_) => default,
    }
}

struct Inner {
    registry: Registry,
    recorder: FlightRecorder,
    echo: AtomicU8,
    tracing: AtomicBool,
    time: RwLock<Arc<dyn TimeSource>>,
}

/// The shared telemetry handle: one per run, cloned freely across
/// threads. Bundles the metrics [`Registry`], the [`FlightRecorder`],
/// the stderr echo filter, and the [`TimeSource`].
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Telemetry {
    /// A telemetry handle with an explicit recorder capacity and echo
    /// threshold (`None` = no stderr echo). Ignores `VC_LOG`.
    pub fn with_echo(capacity: usize, echo: Option<Level>) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                recorder: FlightRecorder::new(capacity),
                echo: AtomicU8::new(pack_echo(echo)),
                tracing: AtomicBool::new(false),
                time: RwLock::new(Arc::new(WallTime::new())),
            }),
        }
    }

    /// The production default: echo at `VC_LOG` if set, else `warn`.
    pub fn from_env() -> Self {
        Self::with_echo(DEFAULT_CAPACITY, env_echo(Some(Level::Warn)))
    }

    /// The test/DST default: echo only if `VC_LOG` explicitly asks for
    /// it, otherwise silent.
    pub fn silent() -> Self {
        Self::with_echo(DEFAULT_CAPACITY, env_echo(None))
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Replaces the time source (the DST harness installs its
    /// `VirtualClock` here).
    pub fn set_time_source(&self, time: Arc<dyn TimeSource>) {
        *self.inner.time.write() = time;
    }

    /// Current time in seconds from the active [`TimeSource`].
    pub fn now_s(&self) -> f64 {
        self.inner.time.read().now_s()
    }

    /// True when causal workunit tracing is enabled (off by default, so
    /// uninstrumented runs record byte-identical flight-recorder output).
    pub fn tracing(&self) -> bool {
        self.inner.tracing.load(Ordering::Relaxed)
    }

    /// Enables or disables causal workunit tracing. Call sites guard
    /// their `trace_span` emissions on [`Telemetry::tracing`], so default
    /// runs pay one relaxed load and allocate nothing.
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracing.store(on, Ordering::Relaxed);
    }

    /// Current stderr-echo threshold (`None` = off).
    pub fn echo_level(&self) -> Option<Level> {
        unpack_echo(self.inner.echo.load(Ordering::Relaxed))
    }

    /// Sets the stderr-echo threshold.
    pub fn set_echo_level(&self, level: Option<Level>) {
        self.inner.echo.store(pack_echo(level), Ordering::Relaxed);
    }

    /// Records an event timestamped from the active time source.
    pub fn event(&self, level: Level, name: &str, fields: Vec<(&str, FieldValue)>) {
        self.event_at(self.now_s(), level, name, fields);
    }

    /// Records an event with an explicit timestamp (used where the caller
    /// already holds the authoritative clock reading, e.g. the middleware
    /// server's `now` parameter).
    pub fn event_at(&self, t_s: f64, level: Level, name: &str, fields: Vec<(&str, FieldValue)>) {
        self.emit(Event {
            t_s,
            level,
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    /// Records a fully-built event: echoes to stderr when the level
    /// passes the filter, then appends to the flight recorder.
    pub fn emit(&self, event: Event) {
        if let Some(threshold) = self.echo_level() {
            if event.level <= threshold {
                eprintln!("{event}");
            }
        }
        self.inner.recorder.record(event);
    }

    /// Opens a span: an event emitted on drop with a `dur_s` field, and
    /// optionally observed into a latency histogram.
    pub fn span(&self, level: Level, name: &str, fields: Vec<(&str, FieldValue)>) -> Span {
        Span {
            tel: self.clone(),
            level,
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            start_s: self.now_s(),
            hist: None,
        }
    }
}

/// A timed region. Dropping the span emits its event (with a `dur_s`
/// field appended) and, if [`Span::with_histogram`] was called, observes
/// the duration into that histogram.
pub struct Span {
    tel: Telemetry,
    level: Level,
    name: String,
    fields: Vec<(String, FieldValue)>,
    start_s: f64,
    hist: Option<Arc<Histogram>>,
}

impl Span {
    /// Also observe the span's duration into the latency histogram named
    /// `name` (created with [`Histogram::latency_bounds`] on first use).
    pub fn with_histogram(mut self, name: &str) -> Self {
        self.hist = Some(self.tel.registry().histogram(name));
        self
    }

    /// The span's start time in seconds.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_s = self.tel.now_s();
        let dur_s = end_s - self.start_s;
        if let Some(h) = &self.hist {
            h.observe(dur_s);
        }
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("dur_s".to_string(), FieldValue::F64(dur_s)));
        self.tel.emit(Event {
            t_s: end_s,
            level: self.level,
            name: std::mem::take(&mut self.name),
            fields,
        });
    }
}

/// Records a structured event on a [`Telemetry`] handle:
/// `event!(tel, Info, "worker_kill", host = 3_u64, life = 1_u64)`.
#[macro_export]
macro_rules! event {
    ($tel:expr, $lvl:ident, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $tel.event(
            $crate::Level::$lvl,
            $name,
            vec![$((stringify!($k), $crate::FieldValue::from($v))),*],
        )
    };
}

/// Opens a timed span on a [`Telemetry`] handle; bind the result so the
/// span closes when it goes out of scope:
/// `let _s = span!(tel, Debug, "train", wu = wu_id).with_histogram("train_s");`
#[macro_export]
macro_rules! span {
    ($tel:expr, $lvl:ident, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $tel.span(
            $crate::Level::$lvl,
            $name,
            vec![$((stringify!($k), $crate::FieldValue::from($v))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("chatty"), None);
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
            assert_eq!(unpack_echo(pack_echo(Some(l))), Some(l));
        }
        assert_eq!(unpack_echo(pack_echo(None)), None);
    }

    #[test]
    fn events_carry_typed_fields_and_roundtrip_json() {
        let tel = Telemetry::with_echo(16, None);
        tel.event(
            Level::Info,
            "worker_kill",
            vec![("host", 3_u64.into()), ("graceful", false.into())],
        );
        let evs = tel.recorder().events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "worker_kill");
        assert_eq!(evs[0].field("host"), Some(&FieldValue::U64(3)));
        assert_eq!(evs[0].field("graceful"), Some(&FieldValue::Bool(false)));
        assert_eq!(evs[0].field("missing"), None);

        let json = serde_json::to_string(&evs[0]).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, evs[0]);
    }

    #[test]
    fn explicit_time_source_drives_timestamps() {
        struct Fixed(f64);
        impl TimeSource for Fixed {
            fn now_s(&self) -> f64 {
                self.0
            }
        }
        let tel = Telemetry::with_echo(16, None);
        tel.set_time_source(Arc::new(Fixed(42.5)));
        assert_eq!(tel.now_s(), 42.5);
        tel.event(Level::Debug, "tick", vec![]);
        assert_eq!(tel.recorder().events()[0].t_s, 42.5);
        tel.event_at(7.0, Level::Debug, "explicit", vec![]);
        assert_eq!(tel.recorder().events()[1].t_s, 7.0);
    }

    #[test]
    fn span_appends_duration_and_feeds_histogram() {
        let tel = Telemetry::with_echo(16, None);
        {
            let _s = tel
                .span(Level::Debug, "train", vec![("wu", 9_u64.into())])
                .with_histogram("train_s");
        }
        let evs = tel.recorder().events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "train");
        assert_eq!(evs[0].field("wu"), Some(&FieldValue::U64(9)));
        assert!(matches!(
            evs[0].field("dur_s"),
            Some(FieldValue::F64(d)) if *d >= 0.0
        ));
        assert_eq!(tel.registry().histogram("train_s").snapshot().count, 1);
    }

    #[test]
    fn display_is_human_readable() {
        let ev = Event {
            t_s: 1.5,
            level: Level::Warn,
            name: "wu_invalid".to_string(),
            fields: vec![("wu".to_string(), FieldValue::U64(4))],
        };
        let line = format!("{ev}");
        assert!(line.contains("warn"), "{line}");
        assert!(line.contains("wu_invalid wu=4"), "{line}");
    }
}
