//! Causal workunit tracing: dispatch → fetch → train → upload →
//! validate → assimilate spans, plus a Chrome `trace_event` exporter.
//!
//! A *trace* is the life of one workunit; its `trace` id is the workunit
//! id, stable across every stage and every replication attempt. Each
//! stage emits one `trace_span` event into the flight recorder carrying
//! `trace`, a derived `span` id, the `stage` name, the `host` that did
//! the work, and the stage duration — and feeds a per-stage latency
//! histogram (`trace_<stage>_s`). Emission is gated by
//! [`Telemetry::tracing`], which defaults to off, so uninstrumented runs
//! record byte-identical flight-recorder output (the DST golden-bit
//! suites prove this).
//!
//! [`chrome_trace_json`] converts a recorded event stream into the
//! Chrome `trace_event` JSON format: `trace_span` events become complete
//! (`"ph":"X"`) slices on a per-workunit track, everything else becomes
//! a global instant, so any run — including a failing DST seed — opens
//! as a waterfall in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).

use crate::event::{Event, FieldValue, Level, Telemetry};
use crate::metrics::Histogram;

/// The event name every stage span is recorded under.
pub const TRACE_SPAN: &str = "trace_span";

/// One stage in a workunit's life, in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceStage {
    /// Server hands the workunit to a host (`dur_s` = time spent queued).
    Dispatch,
    /// Worker syncs stale parameter shards from the PS.
    Fetch,
    /// Worker trains its replica on the shard.
    Train,
    /// Result travels worker → server (delay line / network).
    Upload,
    /// Server-side validation / quorum decision on a reported result.
    Validate,
    /// Accepted result merged into the global model.
    Assimilate,
}

impl TraceStage {
    /// All stages, causal order.
    pub const ALL: [TraceStage; 6] = [
        TraceStage::Dispatch,
        TraceStage::Fetch,
        TraceStage::Train,
        TraceStage::Upload,
        TraceStage::Validate,
        TraceStage::Assimilate,
    ];

    /// The canonical lowercase stage name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceStage::Dispatch => "dispatch",
            TraceStage::Fetch => "fetch",
            TraceStage::Train => "train",
            TraceStage::Upload => "upload",
            TraceStage::Validate => "validate",
            TraceStage::Assimilate => "assimilate",
        }
    }

    /// The per-stage latency histogram name (`trace_<stage>_s`).
    pub fn histogram_name(self) -> &'static str {
        match self {
            TraceStage::Dispatch => "trace_dispatch_s",
            TraceStage::Fetch => "trace_fetch_s",
            TraceStage::Train => "trace_train_s",
            TraceStage::Upload => "trace_upload_s",
            TraceStage::Validate => "trace_validate_s",
            TraceStage::Assimilate => "trace_assimilate_s",
        }
    }
}

/// FNV-1a 64-bit — the workspace's standing fingerprint hash, used here
/// to derive deterministic span ids.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Derives the span id for one stage emission: a pure function of
/// (trace, stage, host, end-time bits), so replayed DST runs produce
/// identical ids.
pub fn span_id(trace: u64, stage: TraceStage, host: u64, t_end_s: f64) -> u64 {
    let mut buf = [0u8; 25];
    buf[..8].copy_from_slice(&trace.to_le_bytes());
    buf[8..16].copy_from_slice(&host.to_le_bytes());
    buf[16..24].copy_from_slice(&t_end_s.to_bits().to_le_bytes());
    buf[24] = stage as u8;
    fnv1a(&buf)
}

impl Telemetry {
    /// Records one stage span for workunit `trace`, ending at `t_end_s`
    /// with duration `dur_s`, executed by `host`. Extra fields (attempt,
    /// outcome, epoch, …) ride along. No-op unless tracing is enabled —
    /// callers on hot paths should additionally guard on
    /// [`Telemetry::tracing`] to skip building `extra`.
    pub fn trace_span(
        &self,
        t_end_s: f64,
        stage: TraceStage,
        trace: u64,
        host: u64,
        dur_s: f64,
        extra: Vec<(&str, FieldValue)>,
    ) {
        if !self.tracing() {
            return;
        }
        self.registry()
            .histogram_with(stage.histogram_name(), Histogram::latency_bounds)
            .observe(dur_s);
        let mut fields: Vec<(String, FieldValue)> = Vec::with_capacity(5 + extra.len());
        fields.push(("trace".to_string(), FieldValue::U64(trace)));
        fields.push((
            "span".to_string(),
            FieldValue::U64(span_id(trace, stage, host, t_end_s)),
        ));
        fields.push((
            "stage".to_string(),
            FieldValue::Str(stage.as_str().to_string()),
        ));
        fields.push(("host".to_string(), FieldValue::U64(host)));
        fields.push(("dur_s".to_string(), FieldValue::F64(dur_s)));
        for (k, v) in extra {
            fields.push((k.to_string(), v));
        }
        self.emit(Event {
            t_s: t_end_s,
            level: Level::Trace,
            name: TRACE_SPAN.to_string(),
            fields,
        });
    }
}

// ------------------------------------------------- Chrome trace exporter

/// Escapes a string for embedding in a JSON string literal. The vendored
/// serde_json shim has no `Value` type, so the exporter builds its JSON
/// by hand.
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number (non-finite values, which JSON
/// cannot represent, degrade to 0).
fn num(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral floats without a fraction; that is still
        // valid JSON, so leave it.
    } else {
        out.push('0');
    }
}

fn field_json(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(f) => num(*f, out),
        FieldValue::Str(s) => {
            out.push('"');
            esc(s, out);
            out.push('"');
        }
    }
}

fn args_json(ev: &Event, out: &mut String) {
    out.push('{');
    let mut first = true;
    for (k, v) in &ev.fields {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        esc(k, out);
        out.push_str("\":");
        field_json(v, out);
    }
    out.push('}');
}

fn field_u64(ev: &Event, key: &str) -> Option<u64> {
    match ev.field(key) {
        Some(FieldValue::U64(n)) => Some(*n),
        _ => None,
    }
}

fn field_f64(ev: &Event, key: &str) -> Option<f64> {
    match ev.field(key) {
        Some(FieldValue::F64(f)) => Some(*f),
        Some(FieldValue::U64(n)) => Some(*n as f64),
        _ => None,
    }
}

/// Converts a recorded event stream to Chrome `trace_event` JSON.
///
/// `trace_span` events become complete (`"ph":"X"`) slices: one track
/// (`tid`) per workunit, slice start `= t_s − dur_s`, duration from the
/// span — so a workunit's dispatch → fetch → train → upload → validate →
/// assimilate chain reads as a waterfall. Every other event becomes a
/// global instant (`"ph":"i"`) on track 0, preserving kills, respawns,
/// quorum decisions, and checkpoint markers as context lines.
///
/// The output loads directly in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        if ev.name == TRACE_SPAN {
            let dur_s = field_f64(ev, "dur_s").unwrap_or(0.0).max(0.0);
            let tid = field_u64(ev, "trace").unwrap_or(0);
            let stage = match ev.field("stage") {
                Some(FieldValue::Str(s)) => s.as_str(),
                _ => "span",
            };
            out.push_str("{\"name\":\"");
            esc(stage, &mut out);
            out.push_str("\",\"cat\":\"wu\",\"ph\":\"X\",\"ts\":");
            num((ev.t_s - dur_s) * 1e6, &mut out);
            out.push_str(",\"dur\":");
            num(dur_s * 1e6, &mut out);
            out.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"args\":"));
            args_json(ev, &mut out);
            out.push('}');
        } else {
            out.push_str("{\"name\":\"");
            esc(&ev.name, &mut out);
            out.push_str("\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"ts\":");
            num(ev.t_s * 1e6, &mut out);
            out.push_str(",\"pid\":1,\"tid\":0,\"args\":");
            args_json(ev, &mut out);
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_is_off_by_default_and_gates_emission() {
        let tel = Telemetry::with_echo(32, None);
        assert!(!tel.tracing());
        tel.trace_span(1.0, TraceStage::Train, 7, 3, 0.5, vec![]);
        assert!(tel.recorder().is_empty(), "disabled tracing emits nothing");
        assert!(
            tel.registry()
                .snapshot()
                .histogram("trace_train_s")
                .is_none(),
            "disabled tracing registers no histograms"
        );

        tel.set_tracing(true);
        tel.trace_span(
            1.0,
            TraceStage::Train,
            7,
            3,
            0.5,
            vec![("epoch", 2_u64.into())],
        );
        let evs = tel.recorder().events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, TRACE_SPAN);
        assert_eq!(evs[0].field("trace"), Some(&FieldValue::U64(7)));
        assert_eq!(
            evs[0].field("stage"),
            Some(&FieldValue::Str("train".to_string()))
        );
        assert_eq!(evs[0].field("host"), Some(&FieldValue::U64(3)));
        assert_eq!(evs[0].field("dur_s"), Some(&FieldValue::F64(0.5)));
        assert_eq!(evs[0].field("epoch"), Some(&FieldValue::U64(2)));
        assert_eq!(
            tel.registry().histogram("trace_train_s").snapshot().count,
            1
        );
    }

    #[test]
    fn span_ids_are_deterministic_and_distinguish_stages() {
        let a = span_id(7, TraceStage::Train, 3, 1.5);
        assert_eq!(a, span_id(7, TraceStage::Train, 3, 1.5));
        assert_ne!(a, span_id(7, TraceStage::Fetch, 3, 1.5));
        assert_ne!(a, span_id(8, TraceStage::Train, 3, 1.5));
        assert_ne!(a, span_id(7, TraceStage::Train, 4, 1.5));
        assert_ne!(a, span_id(7, TraceStage::Train, 3, 1.6));
    }

    #[test]
    fn chrome_export_renders_slices_and_instants() {
        let tel = Telemetry::with_echo(32, None);
        tel.set_tracing(true);
        tel.trace_span(2.0, TraceStage::Train, 9, 1, 0.5, vec![]);
        tel.event_at(
            2.5,
            Level::Info,
            "worker_kill",
            vec![("host", 1_u64.into())],
        );
        let json = chrome_trace_json(&tel.recorder().events());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // The span: a complete slice on the workunit's track, starting at
        // t_end − dur = 1.5 s = 1 500 000 µs, lasting 500 000 µs.
        assert!(json.contains("\"name\":\"train\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":1500000"), "{json}");
        assert!(json.contains("\"dur\":500000"), "{json}");
        assert!(json.contains("\"tid\":9"), "{json}");
        // The kill: a global instant.
        assert!(json.contains("\"name\":\"worker_kill\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"ts\":2500000"), "{json}");
    }

    #[test]
    fn chrome_export_escapes_hostile_strings() {
        let ev = Event {
            t_s: 1.0,
            level: Level::Info,
            name: "we\"ird\\name\n".to_string(),
            fields: vec![(
                "msg".to_string(),
                FieldValue::Str("quote\" slash\\ ctrl\u{1}".to_string()),
            )],
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("we\\\"ird\\\\name\\n"), "{json}");
        assert!(json.contains("quote\\\" slash\\\\ ctrl\\u0001"), "{json}");
    }

    #[test]
    fn chrome_export_handles_non_finite_and_missing_fields() {
        let ev = Event {
            t_s: f64::NAN,
            level: Level::Trace,
            name: TRACE_SPAN.to_string(),
            fields: vec![("x".to_string(), FieldValue::F64(f64::INFINITY))],
        };
        let json = chrome_trace_json(&[ev]);
        assert!(!json.contains("NaN"), "{json}");
        assert!(!json.contains("inf"), "{json}");
    }
}
