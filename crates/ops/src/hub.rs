//! The [`OpsHub`]: one shared handle behind every ops endpoint.
//!
//! The hub owns the run's [`Telemetry`] handle plus the most recently
//! published [`StatusSnapshot`], and answers every endpoint as a pure
//! in-memory call ([`OpsHub::handle`]). The HTTP server is a thin socket
//! front-end over exactly this router; the DST calls it directly, so the
//! bytes a live scrape would return are deterministic under the virtual
//! clock and golden-testable without ever opening a socket.

use parking_lot::Mutex;
use vc_telemetry::{chrome_trace_json, Telemetry};

use crate::status::StatusSnapshot;

/// One HTTP-shaped response: status code, content type, body. Produced by
/// the in-memory router and serialized onto sockets by the HTTP server.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// HTTP status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, msg: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// The canonical reason phrase for this response's status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// The shared ops state: telemetry plus the last published status
/// snapshot. Cloned across the coordinator (publisher) and the HTTP
/// worker threads (readers); all methods are lock-cheap and never block
/// on training-path work.
pub struct OpsHub {
    tel: Telemetry,
    status: Mutex<StatusSnapshot>,
}

impl OpsHub {
    /// A hub over the run's telemetry handle, with an empty status until
    /// the first publish.
    pub fn new(tel: Telemetry) -> Self {
        OpsHub {
            tel,
            status: Mutex::new(StatusSnapshot::default()),
        }
    }

    /// The underlying telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Replaces the published status snapshot. The coordinator calls this
    /// once per event-loop beat (threaded) or per tick (DST).
    pub fn publish(&self, snap: StatusSnapshot) {
        *self.status.lock() = snap;
    }

    /// A copy of the last published status snapshot.
    pub fn status(&self) -> StatusSnapshot {
        self.status.lock().clone()
    }

    /// `GET /metrics`: the Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        self.tel.registry().render_prometheus()
    }

    /// `GET /status`: the last published snapshot as JSON.
    pub fn status_json(&self) -> String {
        self.status().to_json()
    }

    /// `GET /events`: the flight-recorder tail as JSONL, oldest first.
    /// Events are copied out under the recorder lock and serialized
    /// outside it, so a slow scrape never stalls recording threads.
    pub fn events_jsonl(&self) -> String {
        let events = self.tel.recorder().events();
        let mut out = String::with_capacity(events.len() * 96);
        for ev in &events {
            out.push_str(&serde_json::to_string(ev).expect("event serialization is infallible"));
            out.push('\n');
        }
        out
    }

    /// `GET /trace`: the flight recorder as Chrome `trace_event` JSON,
    /// loadable in `chrome://tracing` / Perfetto.
    pub fn trace_json(&self) -> String {
        chrome_trace_json(&self.tel.recorder().events())
    }

    /// Routes one request path to its endpoint. This is the single
    /// routing function: the HTTP server calls it per request, and the
    /// DST calls it directly for deterministic in-memory snapshots. The
    /// query string (if any) is ignored.
    pub fn handle(&self, path: &str) -> Response {
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/" | "/index.html" => {
                Response::ok("text/html; charset=utf-8", crate::dashboard::DASHBOARD_HTML)
            }
            "/metrics" => Response::ok(
                "text/plain; version=0.0.4; charset=utf-8",
                self.metrics_text(),
            ),
            "/status" => Response::ok("application/json", self.status_json()),
            "/events" => Response::ok("application/x-ndjson", self.events_jsonl()),
            "/trace" => Response::ok("application/json", self.trace_json()),
            "/healthz" => Response::ok("text/plain; charset=utf-8", "ok\n"),
            _ => Response::error(404, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_telemetry::Level;

    fn hub() -> OpsHub {
        let tel = Telemetry::with_echo(64, None);
        tel.registry().counter("vc_test_total").add(2);
        tel.event_at(1.0, Level::Info, "boot", vec![("seed", 7_u64.into())]);
        OpsHub::new(tel)
    }

    #[test]
    fn routes_every_endpoint() {
        let h = hub();
        assert_eq!(h.handle("/healthz").status, 200);
        assert_eq!(h.handle("/healthz").body, b"ok\n");

        let dash = h.handle("/");
        assert_eq!(dash.status, 200);
        assert!(dash.content_type.starts_with("text/html"));
        let html = String::from_utf8(dash.body).unwrap();
        assert!(html.contains("/status"), "dashboard polls /status");

        let metrics = h.handle("/metrics");
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(text.contains("vc_test_total 2"), "{text}");
        assert!(text.contains("# TYPE vc_test_total counter"), "{text}");

        let events = h.handle("/events");
        assert_eq!(events.status, 200);
        let jsonl = String::from_utf8(events.body).unwrap();
        let ev: vc_telemetry::Event = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(ev.name, "boot");

        let trace = h.handle("/trace");
        let tj = String::from_utf8(trace.body).unwrap();
        assert!(tj.starts_with("{\"displayTimeUnit\""), "{tj}");

        assert_eq!(h.handle("/nope").status, 404);
        assert_eq!(h.handle("/metrics/deeper").status, 404);
    }

    #[test]
    fn status_serves_last_published_snapshot_and_ignores_query() {
        let h = hub();
        let before = h.handle("/status");
        let snap: StatusSnapshot =
            serde_json::from_str(&String::from_utf8(before.body).unwrap()).unwrap();
        assert_eq!(snap, StatusSnapshot::default(), "empty until first publish");

        let published = StatusSnapshot {
            t_s: 4.0,
            label: "job p10".to_string(),
            epochs_done: 2,
            epochs_total: 3,
            queue_depth: 5,
            ..StatusSnapshot::default()
        };
        h.publish(published.clone());
        let after = h.handle("/status?poll=1");
        let snap: StatusSnapshot =
            serde_json::from_str(&String::from_utf8(after.body).unwrap()).unwrap();
        assert_eq!(snap, published);
    }

    #[test]
    fn repeated_handles_are_byte_identical_when_state_is_quiescent() {
        let h = hub();
        for path in ["/", "/metrics", "/status", "/events", "/trace", "/healthz"] {
            assert_eq!(h.handle(path), h.handle(path), "{path} must be pure");
        }
    }
}
