//! A tiny std-only HTTP/1.1 server over [`std::net`].
//!
//! Built for exactly one job: serving the ops endpoints from inside a
//! training run without perturbing it. One accept thread feeds a bounded
//! queue drained by a fixed pool of worker threads; when the queue is
//! full the accept thread answers `503` inline rather than letting
//! connections pile up. Request parsing is hostile-input-safe: the
//! request head is capped, reads and writes are deadline-bounded, only
//! `GET` is accepted, and every response closes the connection — there
//! is no keep-alive state for a slow client to squat on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::hub::{OpsHub, Response};

/// Maximum request-head bytes accepted before answering `431`.
const MAX_HEAD: usize = 8 * 1024;
/// Per-connection read/write deadline.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Worker threads serving parsed requests.
const WORKERS: usize = 4;
/// Accepted-connection queue bound; beyond this the accept thread sheds
/// load with `503`.
const BACKLOG: usize = 64;

/// The running ops server. Dropping it stops the accept loop, drains the
/// workers, and joins every thread.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Option<SyncSender<TcpStream>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`, or port `0` for an ephemeral
    /// port) and starts serving `hub`'s endpoints.
    pub fn start(addr: impl ToSocketAddrs, hub: Arc<OpsHub>) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(BACKLOG);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(WORKERS);
        for _ in 0..WORKERS {
            let rx = rx.clone();
            let hub = hub.clone();
            workers.push(std::thread::spawn(move || worker_loop(&rx, &hub)));
        }

        let accept = {
            let stop = stop.clone();
            let tx = tx.clone();
            std::thread::spawn(move || accept_loop(&listener, &stop, &tx))
        };

        Ok(OpsServer {
            addr: local,
            stop,
            queue: Some(tx),
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // With the accept thread gone, dropping the last sender ends the
        // worker recv loops once the queue drains.
        self.queue = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut s)) => {
                // Shed load without blocking the accept loop.
                let _ = s.set_write_timeout(Some(IO_TIMEOUT));
                let _ = write_response(&mut s, &Response::error(503, "ops server saturated"));
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, hub: &OpsHub) {
    loop {
        // Hold the receiver lock only for the dequeue, not while serving.
        let stream = match rx.lock().recv() {
            Ok(s) => s,
            Err(_) => break,
        };
        serve_connection(stream, hub);
    }
}

fn serve_connection(mut stream: TcpStream, hub: &OpsHub) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let response = match read_request_head(&mut stream) {
        Ok(head) => match parse_request_line(&head) {
            Ok(path) => hub.handle(&path),
            Err(resp) => resp,
        },
        Err(Some(resp)) => resp,
        // Read error / client gone: nothing useful to say.
        Err(None) => return,
    };
    if write_response(&mut stream, &response).is_ok() {
        lingering_close(stream);
    }
}

/// Closes a served connection without racing the peer: shut down the
/// write side, then briefly drain whatever the client is still sending
/// (an oversized head, a request body we never read). Closing with
/// unread bytes pending would RST the connection and can destroy the
/// response before the client reads it.
fn lingering_close(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Reads until the end-of-head marker (`\r\n\r\n`), the size cap, or the
/// read deadline. Returns the head bytes, `Err(Some(431))` past the cap,
/// or `Err(None)` when the connection died first.
fn read_request_head(stream: &mut TcpStream) -> Result<Vec<u8>, Option<Response>> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(None),
            Ok(n) => n,
            Err(_) => return Err(None),
        };
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return Ok(head);
        }
        if head.len() > MAX_HEAD {
            return Err(Some(Response::error(431, "request head too large")));
        }
    }
}

/// Parses the request line out of a raw head. Tolerates `\n`-only line
/// endings, rejects non-GET methods with `405` and anything malformed —
/// binary garbage, missing path, non-HTTP version, non-ASCII control
/// bytes — with `400`.
fn parse_request_line(head: &[u8]) -> Result<String, Response> {
    let line_end = head
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| Response::error(400, "malformed request"))?;
    let line = &head[..line_end];
    let line = std::str::from_utf8(line)
        .map_err(|_| Response::error(400, "malformed request"))?
        .trim_end_matches('\r');
    if line.bytes().any(|b| b < 0x20 || b == 0x7f) {
        return Err(Response::error(400, "malformed request"));
    }
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| Response::error(400, "malformed request"))?;
    let target = parts
        .next()
        .ok_or_else(|| Response::error(400, "malformed request"))?;
    let version = parts
        .next()
        .ok_or_else(|| Response::error(400, "malformed request"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "unsupported protocol"));
    }
    if method != "GET" {
        return Err(Response::error(405, "only GET is served"));
    }
    if !target.starts_with('/') || target.len() > 2048 {
        return Err(Response::error(400, "malformed request target"));
    }
    Ok(target.to_string())
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_telemetry::Telemetry;

    fn start_server() -> (OpsServer, Arc<OpsHub>) {
        let hub = Arc::new(OpsHub::new(Telemetry::with_echo(64, None)));
        let srv = OpsServer::start("127.0.0.1:0", hub.clone()).expect("bind ephemeral port");
        (srv, hub)
    }

    fn raw_request(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let _ = s.write_all(bytes);
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        raw_request(
            addr,
            format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
        )
    }

    #[test]
    fn serves_endpoints_over_tcp() {
        let (srv, hub) = start_server();
        let addr = srv.local_addr();
        hub.telemetry().registry().counter("vc_http_test").add(9);

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");
        assert!(health.contains("Connection: close"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("vc_http_test 9"), "{metrics}");
        let status = get(addr, "/status");
        assert!(status.contains("application/json"), "{status}");
        let dash = get(addr, "/");
        assert!(dash.contains("text/html"), "{dash}");
        assert!(get(addr, "/missing").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn hostile_requests_get_clean_errors() {
        let (srv, _hub) = start_server();
        let addr = srv.local_addr();

        assert!(
            raw_request(addr, b"POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"),
            "non-GET is refused"
        );
        assert!(
            raw_request(addr, b"\x00\x01\x02\xff\xfe garbage\r\n\r\n").starts_with("HTTP/1.1 400"),
            "binary garbage is refused"
        );
        assert!(
            raw_request(addr, b"GET\r\n\r\n").starts_with("HTTP/1.1 400"),
            "missing target is refused"
        );
        assert!(
            raw_request(addr, b"GET /metrics SPDY/3\r\n\r\n").starts_with("HTTP/1.1 400"),
            "non-HTTP version is refused"
        );
        assert!(
            raw_request(addr, b"GET metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 400"),
            "relative target is refused"
        );

        // An oversized head is cut off with 431, not buffered forever.
        let mut big = Vec::from(&b"GET /metrics HTTP/1.1\r\n"[..]);
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD + 1024));
        big.extend_from_slice(b"\r\n\r\n");
        assert!(
            raw_request(addr, &big).starts_with("HTTP/1.1 431"),
            "oversized head is refused"
        );

        // A half-open client that sends nothing and hangs up gets no
        // response and must not wedge a worker: the server still answers
        // afterwards.
        drop(TcpStream::connect(addr).unwrap());
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn newline_only_line_endings_are_tolerated() {
        let (srv, _hub) = start_server();
        let out = raw_request(srv.local_addr(), b"GET /healthz HTTP/1.0\n\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let (srv, _hub) = start_server();
        let addr = srv.local_addr();
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));
        drop(srv);
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly while the port drains; a real
                // request must fail either way.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(500)))
                    .unwrap();
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                s.read_to_string(&mut buf).is_err() || buf.is_empty()
            },
            "no thread keeps serving after drop"
        );
    }
}
