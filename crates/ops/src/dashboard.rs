//! The `GET /` dashboard: one self-contained HTML file, no external
//! assets, no framework. It polls `/status` once a second and renders
//! fleet / queue / accuracy sparklines on `<canvas>`, plus the scheduler
//! and parameter-service counters — enough to see stragglers, backlog,
//! and a learning (or collapsing) run at a glance from any browser
//! pointed at the ops port.

/// The single-file HTML dashboard served at `/`.
pub const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>vc-dl ops</title>
<style>
  body { font: 13px/1.5 ui-monospace, "SF Mono", Menlo, Consolas, monospace;
         background: #101418; color: #cdd6e0; margin: 0; padding: 1.2rem; }
  h1 { font-size: 1.05rem; margin: 0 0 .2rem; color: #e8eef4; }
  #sub { color: #7f8c99; margin-bottom: 1rem; }
  .grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(270px, 1fr));
          gap: .8rem; }
  .card { background: #171d24; border: 1px solid #242d37; border-radius: 6px;
          padding: .7rem .9rem; }
  .card h2 { font-size: .78rem; text-transform: uppercase; letter-spacing: .06em;
             color: #7f8c99; margin: 0 0 .4rem; }
  .big { font-size: 1.5rem; color: #e8eef4; }
  canvas { width: 100%; height: 46px; display: block; margin-top: .4rem; }
  table { border-collapse: collapse; width: 100%; }
  td { padding: .1rem .4rem .1rem 0; }
  td.v { text-align: right; color: #e8eef4; }
  #bar { height: 8px; background: #242d37; border-radius: 4px; overflow: hidden;
         margin-top: .4rem; }
  #bar div { height: 100%; background: #3fa7ff; width: 0; transition: width .4s; }
  .ok { color: #58d68d; } .bad { color: #ff6b6b; }
  a { color: #3fa7ff; text-decoration: none; }
</style>
</head>
<body>
<h1>vc-dl operations</h1>
<div id="sub">connecting&hellip;</div>
<div class="grid">
  <div class="card"><h2>Job</h2>
    <div><span class="big" id="epoch">-</span> <span id="epochs_total"></span></div>
    <div id="bar"><div id="barfill"></div></div>
    <table>
      <tr><td>assimilations</td><td class="v" id="assims">-</td></tr>
      <tr><td>open workunits</td><td class="v" id="open">-</td></tr>
      <tr><td>state</td><td class="v" id="state">-</td></tr>
    </table>
  </div>
  <div class="card"><h2>Accuracy (per epoch)</h2>
    <div class="big" id="acc">-</div><canvas id="c_acc"></canvas></div>
  <div class="card"><h2>Fleet (alive hosts)</h2>
    <div class="big" id="alive">-</div><canvas id="c_fleet"></canvas>
    <table>
      <tr><td>in flight</td><td class="v" id="inflight">-</td></tr>
      <tr><td>in backoff</td><td class="v" id="backoff">-</td></tr>
      <tr><td>mean reliability</td><td class="v" id="rel">-</td></tr>
    </table>
  </div>
  <div class="card"><h2>Work queue depth</h2>
    <div class="big" id="depth">-</div><canvas id="c_queue"></canvas></div>
  <div class="card"><h2>Scheduler</h2><table id="t_sched"></table></div>
  <div class="card"><h2>Parameter service</h2><table id="t_ps"></table>
    <div id="skew"></div></div>
</div>
<p>raw: <a href="/metrics">/metrics</a> &middot; <a href="/status">/status</a>
 &middot; <a href="/events">/events</a> &middot; <a href="/trace">/trace</a>
 &middot; <a href="/healthz">/healthz</a></p>
<script>
"use strict";
const hist = { acc: [], alive: [], depth: [] };
const MAXPTS = 240;
function push(arr, v) { arr.push(v); if (arr.length > MAXPTS) arr.shift(); }
function spark(id, data, color) {
  const c = document.getElementById(id), ctx = c.getContext("2d");
  c.width = c.clientWidth; c.height = c.clientHeight;
  ctx.clearRect(0, 0, c.width, c.height);
  if (data.length < 2) return;
  const lo = Math.min(...data), hi = Math.max(...data), span = (hi - lo) || 1;
  ctx.beginPath(); ctx.strokeStyle = color; ctx.lineWidth = 1.5;
  data.forEach((v, i) => {
    const x = i / (data.length - 1) * (c.width - 2) + 1;
    const y = c.height - 3 - (v - lo) / span * (c.height - 6);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}
function rows(tbl, pairs) {
  document.getElementById(tbl).innerHTML = pairs
    .map(([k, v]) => `<tr><td>${k}</td><td class="v">${v}</td></tr>`).join("");
}
function render(s) {
  document.getElementById("sub").textContent =
    `${s.label} - t=${s.t_s.toFixed(1)}s`;
  document.getElementById("epoch").textContent = `epoch ${s.epochs_done}`;
  document.getElementById("epochs_total").textContent = `of ${s.epochs_total}`;
  document.getElementById("barfill").style.width =
    s.epochs_total ? (100 * s.epochs_done / s.epochs_total) + "%" : "0";
  document.getElementById("assims").textContent = s.assimilations;
  document.getElementById("open").textContent = s.open_workunits;
  const st = document.getElementById("state");
  st.textContent = s.done ? "finished" : "running";
  st.className = "v " + (s.done ? "ok" : "");
  const acc = s.epoch_acc.length ? s.epoch_acc[s.epoch_acc.length - 1] : NaN;
  document.getElementById("acc").textContent =
    isNaN(acc) ? "-" : (100 * acc).toFixed(1) + "%";
  document.getElementById("alive").textContent =
    `${s.fleet.alive} / ${s.fleet.hosts}`;
  document.getElementById("inflight").textContent = s.fleet.in_flight;
  document.getElementById("backoff").textContent = s.fleet.in_backoff;
  document.getElementById("rel").textContent = s.fleet.mean_reliability.toFixed(3);
  document.getElementById("depth").textContent = s.queue_depth;
  push(hist.alive, s.fleet.alive);
  push(hist.depth, s.queue_depth);
  hist.acc = s.epoch_acc.slice();
  spark("c_acc", hist.acc, "#58d68d");
  spark("c_fleet", hist.alive, "#3fa7ff");
  spark("c_queue", hist.depth, "#f5b041");
  rows("t_sched", [
    ["assigned", s.server.assigned], ["completed", s.server.completed],
    ["timeouts", s.server.timeouts], ["reassignments", s.server.reassignments],
    ["stale results", s.server.stale_results],
    ["invalid results", s.server.invalid_results],
    ["quorum disagreements", s.server.quorum_disagreements],
    ["backoffs", s.server.backoffs]]);
  rows("t_ps", [
    ["shards", s.ps.shard_versions.length],
    ["fetches", s.ps.fetches], ["pushes", s.ps.pushes],
    ["cache hits", s.ps.cache_hits],
    ["bytes rx", s.ps.bytes_rx], ["bytes tx", s.ps.bytes_tx],
    ["bytes saved", s.ps.bytes_saved],
    ["compression", (s.ps.compression_ratio || 1).toFixed(2) + "x"]]);
  document.getElementById("skew").textContent =
    `versions [${s.ps.shard_versions.join(", ")}] skew ${s.ps.version_skew}`;
}
async function poll() {
  try {
    const r = await fetch("/status", { cache: "no-store" });
    render(await r.json());
  } catch (e) {
    document.getElementById("sub").textContent = "status poll failed: " + e;
  }
}
poll();
setInterval(poll, 1000);
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dashboard_is_self_contained() {
        assert!(DASHBOARD_HTML.contains("<!doctype html"));
        // Polls /status, links the raw endpoints, loads nothing external.
        assert!(DASHBOARD_HTML.contains("fetch(\"/status\""));
        for ep in ["/metrics", "/events", "/trace", "/healthz"] {
            assert!(DASHBOARD_HTML.contains(ep), "links {ep}");
        }
        assert!(!DASHBOARD_HTML.contains("http://"));
        assert!(!DASHBOARD_HTML.contains("https://"));
        assert!(!DASHBOARD_HTML.contains("src="), "no external scripts");
        // Renders the three sparkline canvases.
        for c in ["c_acc", "c_fleet", "c_queue"] {
            assert!(DASHBOARD_HTML.contains(c), "sparkline {c}");
        }
    }
}
