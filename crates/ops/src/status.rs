//! The `/status` payload: one JSON snapshot of everything an operator
//! watches — job progress, fleet health, queue backlog, and parameter-
//! service shard state.
//!
//! The snapshot is plain serde data: the coordinator (threaded runtime)
//! and the DST sim build it from live state and publish it into the
//! [`crate::OpsHub`]; the HTTP `/status` handler and the DST's in-memory
//! handler serialize the same struct, so snapshots are deterministic and
//! golden-testable under the virtual clock.

use serde::{Deserialize, Serialize};
use vc_middleware::{HostHot, ServerMetrics};
use vc_simnet::SimTime;

/// Aggregated fleet health, summarized from the scheduler's hot host
/// records ([`HostHot`]) at publish time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStatus {
    /// Registered hosts.
    pub hosts: usize,
    /// Hosts currently alive.
    pub alive: usize,
    /// Hosts sitting out a reputation backoff.
    pub in_backoff: usize,
    /// Assignments currently in flight across the fleet.
    pub in_flight: usize,
    /// Results completed, summed over hosts.
    pub completed: u64,
    /// Timeouts attributed, summed over hosts.
    pub timeouts: u64,
    /// Invalid results, summed over hosts.
    pub invalids: u64,
    /// Mean scheduler reliability estimate over registered hosts.
    pub mean_reliability: f64,
}

impl FleetStatus {
    /// Summarizes the scheduler's hot host records at time `now`.
    pub fn from_hosts(hosts: &[HostHot], now: SimTime) -> Self {
        let mut s = FleetStatus {
            hosts: hosts.len(),
            ..FleetStatus::default()
        };
        let mut rel_sum = 0.0;
        for h in hosts {
            if h.alive {
                s.alive += 1;
            }
            if h.in_backoff(now) {
                s.in_backoff += 1;
            }
            s.in_flight += h.in_flight;
            s.completed += h.completed;
            s.timeouts += h.timeouts;
            s.invalids += h.invalids;
            rel_sum += h.reliability;
        }
        if !hosts.is_empty() {
            s.mean_reliability = rel_sum / hosts.len() as f64;
        }
        s
    }
}

/// Parameter-service shard state: per-shard merge versions and traffic
/// counters, copied from `ShardedAssimilator::versions()` and
/// `PsService::ops()` at publish time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PsStatus {
    /// Per-shard merge version (index = shard id).
    pub shard_versions: Vec<u64>,
    /// `max(shard_versions) − min(shard_versions)`: how far the most- and
    /// least-merged shards have drifted apart.
    pub version_skew: u64,
    /// Fetch requests served.
    pub fetches: u64,
    /// Shard payloads sent (partial fetches send fewer than `P`).
    pub shards_sent: u64,
    /// Shards skipped because the worker's cache was current.
    pub cache_hits: u64,
    /// Update pushes received.
    pub pushes: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Payload bytes sent.
    pub bytes_tx: u64,
    /// Bytes the transfer codec kept off the wire (quantized deltas
    /// instead of full `Raw` blobs). Zero under `Raw`.
    pub bytes_saved: u64,
    /// `(bytes_tx + bytes_saved) / bytes_tx`: how many raw bytes each
    /// transmitted byte stands for. `1.0` under `Raw` or before traffic.
    pub compression_ratio: f64,
}

impl PsStatus {
    /// Computes the skew from the shard versions and stores both.
    pub fn from_versions(shard_versions: Vec<u64>) -> Self {
        let skew = match (shard_versions.iter().max(), shard_versions.iter().min()) {
            (Some(hi), Some(lo)) => hi - lo,
            _ => 0,
        };
        PsStatus {
            shard_versions,
            version_skew: skew,
            ..PsStatus::default()
        }
    }
}

/// The `/status` document: job progress + fleet + queue + PS state at one
/// instant. Everything the dashboard sparklines poll for.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusSnapshot {
    /// Publish time, seconds on the run's clock (virtual under DST).
    pub t_s: f64,
    /// Job label (e.g. `mnist-mlp p10`).
    pub label: String,
    /// Epochs fully assimilated so far.
    pub epochs_done: u32,
    /// Configured epoch count.
    pub epochs_total: u32,
    /// Workunits still open (queued or in flight) in the current epoch.
    pub open_workunits: usize,
    /// Workunits waiting in the server's work queue (not yet assigned).
    pub queue_depth: usize,
    /// Results assimilated into the model so far.
    pub assimilations: u64,
    /// Mean validation accuracy per finished epoch (the accuracy
    /// sparkline's data).
    pub epoch_acc: Vec<f64>,
    /// Aggregated fleet health.
    pub fleet: FleetStatus,
    /// Scheduler counters.
    pub server: ServerMetrics,
    /// Parameter-service shard state.
    pub ps: PsStatus,
    /// True once the run has finalized.
    pub done: bool,
}

impl StatusSnapshot {
    /// Serializes to the `/status` JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("status serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_summary_aggregates_hot_records() {
        let mut a = HostHot::new(2);
        a.in_flight = 1;
        a.completed = 5;
        a.timeouts = 2;
        let mut b = HostHot::new(2);
        b.alive = false;
        b.invalids = 3;
        b.reliability = 0.5;
        b.consecutive_failures = 1;
        b.start_backoff(SimTime::from_secs(10.0), 1.0, 60.0);
        let f = FleetStatus::from_hosts(&[a, b], SimTime::from_secs(10.5));
        assert_eq!(f.hosts, 2);
        assert_eq!(f.alive, 1);
        assert_eq!(f.in_backoff, 1);
        assert_eq!(f.in_flight, 1);
        assert_eq!(f.completed, 5);
        assert_eq!(f.timeouts, 2);
        assert_eq!(f.invalids, 3);
        assert!((f.mean_reliability - 0.75).abs() < 1e-9);
    }

    #[test]
    fn ps_status_computes_skew() {
        let p = PsStatus::from_versions(vec![7, 3, 5]);
        assert_eq!(p.version_skew, 4);
        assert_eq!(PsStatus::from_versions(vec![]).version_skew, 0);
    }

    #[test]
    fn snapshot_roundtrips_json() {
        let snap = StatusSnapshot {
            t_s: 1.5,
            label: "test p10".to_string(),
            epochs_done: 1,
            epochs_total: 3,
            open_workunits: 4,
            queue_depth: 2,
            assimilations: 9,
            epoch_acc: vec![0.5],
            ..StatusSnapshot::default()
        };
        let back: StatusSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}
