//! # vc-ops
//!
//! The live operations surface for the vc-dl runtime: how a running
//! volunteer-computing job is *watched*, the way a production BOINC
//! project is. Std-only — no dependencies beyond the workspace's
//! vendored shims.
//!
//! Three layers:
//!
//! - [`OpsHub`] — the shared state behind every endpoint: the run's
//!   [`vc_telemetry::Telemetry`] handle plus the latest published
//!   [`StatusSnapshot`]. Its [`OpsHub::handle`] method is the single
//!   router; the DST calls it directly as a pure in-memory function, so
//!   every payload a live scrape would return is deterministic under the
//!   virtual clock.
//! - [`OpsServer`] — a tiny hostile-input-safe HTTP/1.1 server over
//!   `std::net` (one accept thread, a bounded connection queue, a fixed
//!   worker pool) that fronts the same router on a socket. The threaded
//!   runtime starts one behind `RuntimeConfig::ops_addr`.
//! - [`DASHBOARD_HTML`] — the self-contained single-file dashboard
//!   served at `/`, polling `/status` for fleet / queue / accuracy
//!   sparklines.
//!
//! Endpoints: `GET /` (dashboard), `/metrics` (Prometheus exposition),
//! `/status` (JSON snapshot), `/events` (flight-recorder JSONL),
//! `/trace` (Chrome `trace_event` JSON), `/healthz`.

pub mod dashboard;
pub mod http;
pub mod hub;
pub mod status;

pub use dashboard::DASHBOARD_HTML;
pub use http::OpsServer;
pub use hub::{OpsHub, Response};
pub use status::{FleetStatus, PsStatus, StatusSnapshot};
