//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// Wraps `f64` with total ordering (simulated times are never NaN; the
/// constructor enforces it) so it can key the event queue.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Builds a time point; panics on NaN or negative values.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid sim time {s}");
        SimTime(s)
    }

    /// Seconds since origin.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Minutes since origin.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Hours since origin (the unit of the paper's time axes).
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are guaranteed finite by construction.
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2}h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.1}m", self.as_mins())
        } else {
            write!(f, "{:.1}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_units() {
        let t = SimTime::ZERO + 7200.0;
        assert_eq!(t.as_secs(), 7200.0);
        assert_eq!(t.as_hours(), 2.0);
        assert_eq!(t.as_mins(), 120.0);
        assert_eq!(t - SimTime::from_secs(3600.0), 3600.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_negative() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_nan() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(5.0).to_string(), "5.0s");
        assert_eq!(SimTime::from_secs(90.0).to_string(), "1.5m");
        assert_eq!(SimTime::from_secs(9000.0).to_string(), "2.50h");
    }
}
