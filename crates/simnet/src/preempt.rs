//! Preemptible-instance termination models (§IV-E).
//!
//! The paper models instance usage as independent Bernoulli trials with
//! per-subtask termination probability `p`, derives the expected training-
//! time inflation `E[extra] = n·p·t_o`, and reports AWS interruption-
//! frequency bands (<5 %, 5–10 %, …, >20 %). Both that analytic model and a
//! stochastic per-subtask / per-lifetime process are provided; the §IV-E
//! bench verifies that simulation and analysis agree.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How instance terminations are generated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PreemptionModel {
    /// No terminations (standard instances).
    None,
    /// Each subtask execution is an independent Bernoulli trial: with
    /// probability `p` the instance is reclaimed mid-subtask (the paper's
    /// model).
    BernoulliPerSubtask { p: f64 },
    /// Instance lifetimes are exponential with the given mean (hours); a
    /// subtask is killed when the instance's lifetime expires during it.
    ExponentialLifetime { mean_hours: f64 },
}

impl PreemptionModel {
    /// AWS interruption-frequency band "<5 %" from the spot-instance
    /// advisor, the band the paper's instances fall in.
    pub fn aws_band_under_5pct() -> Self {
        PreemptionModel::BernoulliPerSubtask { p: 0.05 }
    }

    /// Draws whether a subtask execution of `duration_s` seconds on an
    /// instance gets preempted, and if so after how many seconds.
    pub fn draw_preemption<R: Rng>(&self, duration_s: f64, rng: &mut R) -> Option<f64> {
        match *self {
            PreemptionModel::None => None,
            PreemptionModel::BernoulliPerSubtask { p } => {
                assert!((0.0..=1.0).contains(&p), "probability out of range");
                if rng.gen::<f64>() < p {
                    // Uniform kill point within the execution.
                    Some(rng.gen::<f64>() * duration_s)
                } else {
                    None
                }
            }
            PreemptionModel::ExponentialLifetime { mean_hours } => {
                assert!(mean_hours > 0.0);
                let mean_s = mean_hours * 3600.0;
                // Memoryless: time-to-kill ~ Exp(1/mean) from subtask start.
                let u: f64 = 1.0 - rng.gen::<f64>();
                let kill_after = -mean_s * u.ln();
                (kill_after < duration_s).then_some(kill_after)
            }
        }
    }

    /// The paper's expectation: extra training time from timeouts, where
    /// `n` subtask waves can each accrue one timeout of `t_o` seconds with
    /// probability `p` (§IV-E: `E = n·p·t_o`).
    pub fn expected_extra_s(n: f64, p: f64, timeout_s: f64) -> f64 {
        n * p * timeout_s
    }
}

/// The paper's §IV-E worked example, reusable by tests, benches and docs.
pub mod sec4e_example {
    /// Subtasks per training job (40 epochs × 50 subtasks).
    pub const N_S: f64 = 2000.0;
    /// Client instances.
    pub const N_C: f64 = 5.0;
    /// Simultaneous subtasks per client.
    pub const N_TC: f64 = 2.0;
    /// Timeout, seconds (5 minutes).
    pub const T_O: f64 = 300.0;

    /// Waves of subtasks that can each accrue a timeout:
    /// `n = n_s / (n_c × n_tc)` = 200.
    pub fn n_waves() -> f64 {
        N_S / (N_C * N_TC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_preempts() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(PreemptionModel::None.draw_preemption(1e6, &mut rng), None);
        }
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let m = PreemptionModel::BernoulliPerSubtask { p: 0.2 };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.draw_preemption(100.0, &mut rng).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_kill_point_inside_duration() {
        let m = PreemptionModel::BernoulliPerSubtask { p: 1.0 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let at = m.draw_preemption(60.0, &mut rng).unwrap();
            assert!((0.0..60.0).contains(&at));
        }
    }

    #[test]
    fn exponential_rate_matches_closed_form() {
        // P(kill within d) = 1 - exp(-d / mean).
        let mean_h = 2.0;
        let m = PreemptionModel::ExponentialLifetime { mean_hours: mean_h };
        let d = 3600.0; // one hour
        let expect = 1.0 - (-0.5f64).exp();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.draw_preemption(d, &mut rng).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn paper_expectation_values() {
        // §IV-E: with p = 0.05 the expected increase is 50 minutes; with
        // p = 0.20 it is 200 minutes.
        use sec4e_example::*;
        let n = n_waves();
        assert_eq!(n, 200.0);
        let e05 = PreemptionModel::expected_extra_s(n, 0.05, T_O) / 60.0;
        let e20 = PreemptionModel::expected_extra_s(n, 0.20, T_O) / 60.0;
        assert!((e05 - 50.0).abs() < 1e-9, "{e05}");
        assert!((e20 - 200.0).abs() < 1e-9, "{e20}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        PreemptionModel::BernoulliPerSubtask { p: 1.5 }.draw_preemption(1.0, &mut rng);
    }
}
