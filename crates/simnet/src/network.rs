//! Network transfer and latency models.
//!
//! Clients download the model `.json` (269 KB), the parameter `.h5`
//! (21.2 MB) and — unless cached by the sticky-file feature — a data-subset
//! `.npz` (3.9 MB), then upload their parameter copy after training. The
//! paper's fleet spans geographic regions, so WAN round-trip latency is
//! variable (§III-B). We model a transfer as
//! `rtt_jitter + bytes / (effective_share · bandwidth)`.

use crate::specs::InstanceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Network model constants.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Median WAN round-trip latency per request, seconds.
    pub rtt_median_s: f64,
    /// Lognormal sigma of the RTT jitter (0 disables jitter).
    pub rtt_sigma: f64,
    /// Fraction of the advertised "up to" bandwidth actually achieved
    /// (TCP over WAN rarely sees the ceiling).
    pub bandwidth_efficiency: f64,
    /// Compression ratio applied to file payloads before transfer —
    /// the BOINC gzip feature of §III-B (npz/h5 files are pre-compressed;
    /// the paper's 21.2 MB and 3.9 MB are already post-compression, so the
    /// default is 1.0 and harnesses lower it for the ablation).
    pub compression: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            rtt_median_s: 0.08,
            rtt_sigma: 0.5,
            bandwidth_efficiency: 0.30,
            compression: 1.0,
        }
    }
}

impl NetworkModel {
    /// Transfer time for `bytes` to/from `instance`, drawing RTT jitter
    /// from `rng`. Deterministic given the RNG state.
    pub fn transfer_s<R: Rng>(&self, instance: &InstanceSpec, bytes: usize, rng: &mut R) -> f64 {
        let rtt = if self.rtt_sigma > 0.0 {
            // Lognormal via Box–Muller on the uniform RNG.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.rtt_median_s * (self.rtt_sigma * z).exp()
        } else {
            self.rtt_median_s
        };
        let payload = bytes as f64 * self.compression;
        let bytes_per_s = instance.bandwidth_gbps * self.bandwidth_efficiency * 1e9 / 8.0;
        rtt + payload / bytes_per_s
    }

    /// Expected (jitter-free) transfer time, for analytic checks.
    pub fn expected_transfer_s(&self, instance: &InstanceSpec, bytes: usize) -> f64 {
        let bytes_per_s = instance.bandwidth_gbps * self.bandwidth_efficiency * 1e9 / 8.0;
        self.rtt_median_s + bytes as f64 * self.compression / bytes_per_s
    }

    /// A seeded RNG for network jitter, namespaced from a run seed.
    pub fn jitter_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f).wrapping_add(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::table1;

    #[test]
    fn bigger_files_take_longer() {
        let m = NetworkModel::default();
        let c = table1::client_8v_2_2();
        let mut rng = NetworkModel::jitter_rng(1);
        let small = m.transfer_s(&c, 1 << 10, &mut rng);
        let big = m.expected_transfer_s(&c, 100 << 20);
        assert!(big > small);
    }

    #[test]
    fn slower_links_take_longer() {
        let m = NetworkModel {
            rtt_sigma: 0.0,
            ..Default::default()
        };
        let fast = m.expected_transfer_s(&table1::client_8v_2_2(), 21 << 20); // 5 Gbps
        let slow = m.expected_transfer_s(&table1::client_8v_2_8(), 21 << 20); // 2 Gbps
        assert!(slow > fast);
        let ratio = (slow - m.rtt_median_s) / (fast - m.rtt_median_s);
        assert!((ratio - 2.5).abs() < 1e-6, "bandwidth ratio {ratio}");
    }

    #[test]
    fn parameter_file_upload_is_subminute() {
        // 21.2 MB at 5 Gbps × 30% efficiency ≈ 0.11 s + RTT: transfers are
        // not the bottleneck the compute is — matching the paper, which
        // never charges transfer time as dominant.
        let m = NetworkModel::default();
        let t = m.expected_transfer_s(&table1::client_8v_2_2(), 21 << 20);
        assert!(t < 1.0, "{t}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let m = NetworkModel::default();
        let c = table1::client_8v_2_2();
        let mut a = NetworkModel::jitter_rng(7);
        let mut b = NetworkModel::jitter_rng(7);
        for _ in 0..32 {
            assert_eq!(
                m.transfer_s(&c, 1 << 20, &mut a),
                m.transfer_s(&c, 1 << 20, &mut b)
            );
        }
    }

    #[test]
    fn jitter_spreads_rtt() {
        let m = NetworkModel::default();
        let c = table1::client_8v_2_2();
        let mut rng = NetworkModel::jitter_rng(9);
        let samples: Vec<f64> = (0..2000).map(|_| m.transfer_s(&c, 0, &mut rng)).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(0.0f64, f64::max);
        assert!(lo < m.rtt_median_s);
        assert!(hi > 2.0 * m.rtt_median_s, "hi {hi}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn compression_scales_payload() {
        let base = NetworkModel {
            rtt_sigma: 0.0,
            ..Default::default()
        };
        let gz = NetworkModel {
            compression: 0.5,
            rtt_sigma: 0.0,
            ..Default::default()
        };
        let c = table1::client_8v_2_8();
        let t0 = base.expected_transfer_s(&c, 10 << 20) - base.rtt_median_s;
        let t1 = gz.expected_transfer_s(&c, 10 << 20) - gz.rtt_median_s;
        assert!((t1 / t0 - 0.5).abs() < 1e-9);
    }
}
