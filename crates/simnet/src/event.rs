//! Deterministic event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: reversed ordering so the `BinaryHeap` (a max-heap)
/// pops the *earliest* event; ties break by insertion sequence, making runs
/// bit-reproducible.
struct Scheduled<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) = greatest priority.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue over payloads of type `T`.
///
/// The single source of causality in every simulation: all fleet activity —
/// downloads finishing, subtasks completing, assimilations draining,
/// preemptions firing — is an event popped from here in time order.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`. Panics if `at` is in the
    /// simulated past — causality violations are always bugs.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| {
            self.now = s.at;
            (s.at, s.payload)
        })
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_popped_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule_in(10.0, ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10.0));
        q.schedule_in(5.0, ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15.0)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(4.0), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_secs(2.0), 2); // still in the future
        q.schedule(SimTime::from_secs(3.0), 3);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
        assert!(q.is_empty());
    }
}
