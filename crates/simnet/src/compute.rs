//! Compute-time models for clients and parameter servers.
//!
//! Calibration targets, all from §IV:
//!
//! * subtask execution time `t_e ≈ 2.4 min` on the reference client at T2;
//! * the P5C5T2 experiment spans ~8 h for 40 epochs × 50 subtasks;
//! * client throughput stops improving beyond T8 on the 8-vCPU clients
//!   (vertical-scaling limit, §IV-B);
//! * server throughput stops improving beyond P5 on the 8-vCPU server
//!   (§IV-B), because parameter servers share the instance's cores;
//! * with P1C3T8, one parameter server falls behind three fast clients —
//!   assimilation dominates the epoch (Fig. 3).

use crate::specs::InstanceSpec;
use serde::{Deserialize, Serialize};

/// Client/server compute model with tunable contention constants.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Subtask service time on the reference client (2.2 GHz) running one
    /// subtask per core group, in seconds. Paper: `t_e ≤ 2.4 min`.
    pub base_subtask_s: f64,
    /// Cores a single training subtask can use productively. The paper's
    /// client throughput keeps rising until T8 on the 8-vCPU clients, so a
    /// subtask is effectively single-core; concurrency beyond
    /// `vcpus / cores_per_task` slows every resident subtask proportionally.
    pub cores_per_task: f64,
    /// Per-extra-subtask scheduling/cache overhead (fractional slowdown).
    pub concurrency_overhead: f64,
    /// RAM one resident subtask needs (GiB); exceeding the instance RAM
    /// produces a steep quadratic slowdown (paging), which is what caps
    /// useful Tn at 8 on the 32 GB clients.
    pub ram_per_task_gb: f64,
    /// Quadratic paging penalty coefficient.
    pub paging_penalty: f64,
    /// Server-side assimilation CPU time per result (validation forward
    /// pass + blend), in seconds, on the reference server core.
    pub assim_cpu_s: f64,
    /// Cores one parameter-server worker needs; caps useful Pn on the
    /// 8-vCPU server at ~5 (paper: "throughput decreases after P5").
    pub cores_per_ps: f64,
    /// Per-extra-parameter-server coordination overhead (fractional).
    pub ps_overhead: f64,
    /// Fractional slowdown per in-flight result at the server: every
    /// queued/processing upload adds web-server, I/O and memory-bus load
    /// that stretches assimilation (the paper's "imbalance between client
    /// and server processing times" growing with Cn × Tn, §IV-B).
    pub inflight_overhead: f64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            base_subtask_s: 144.0, // 2.4 min
            cores_per_task: 1.0,
            concurrency_overhead: 0.06,
            ram_per_task_gb: 3.5,
            paging_penalty: 0.35,
            assim_cpu_s: 16.0,
            cores_per_ps: 1.5,
            ps_overhead: 0.05,
            inflight_overhead: 0.03,
        }
    }
}

impl ComputeModel {
    /// Service time of one subtask on `client` while `resident` subtasks
    /// (including this one) run concurrently.
    ///
    /// Three regimes compose multiplicatively:
    /// 1. core sharing: each subtask wants `cores_per_task` cores; when
    ///    `resident` tasks oversubscribe the instance, every task slows by
    ///    the oversubscription ratio;
    /// 2. a linear per-task overhead (context switching, cache pressure);
    /// 3. a quadratic paging penalty once aggregate RAM demand exceeds the
    ///    instance.
    pub fn subtask_s(&self, client: &InstanceSpec, resident: usize) -> f64 {
        assert!(resident >= 1, "resident must count this subtask");
        let r = resident as f64;
        let demand_cores = r * self.cores_per_task;
        let share = (demand_cores / client.vcpus as f64).max(1.0);
        let overhead = 1.0 + self.concurrency_overhead * (r - 1.0);
        let ram_demand = r * self.ram_per_task_gb;
        let over = (ram_demand - client.ram_gb).max(0.0) / self.ram_per_task_gb;
        let paging = 1.0 + self.paging_penalty * over * over;
        self.base_subtask_s / client.core_speed() * share * overhead * paging
    }

    /// Client throughput in subtasks/second at concurrency `resident`.
    pub fn client_throughput(&self, client: &InstanceSpec, resident: usize) -> f64 {
        resident as f64 / self.subtask_s(client, resident)
    }

    /// The concurrency level at which `client`'s throughput peaks, probing
    /// 1..=32. The paper observes this at T8 for the 8-vCPU/32-GB client.
    pub fn peak_concurrency(&self, client: &InstanceSpec) -> usize {
        (1..=32)
            .max_by(|&a, &b| {
                self.client_throughput(client, a)
                    .partial_cmp(&self.client_throughput(client, b))
                    .unwrap()
            })
            .unwrap()
    }

    /// CPU time of one assimilation on `server` when `active_ps` parameter-
    /// server workers are resident and `inflight` results are queued or
    /// being processed. Workers beyond the core budget slow all of them
    /// down (they share the one server instance, §IV-A); every in-flight
    /// result adds upload-handling and memory-traffic contention.
    pub fn assim_s(&self, server: &InstanceSpec, active_ps: usize, inflight: usize) -> f64 {
        assert!(active_ps >= 1);
        let demand = active_ps as f64 * self.cores_per_ps;
        let share = (demand / server.vcpus as f64).max(1.0);
        let overhead = 1.0 + self.ps_overhead * (active_ps as f64 - 1.0);
        let load = 1.0 + self.inflight_overhead * inflight as f64;
        self.assim_cpu_s / server.core_speed() * share * overhead * load
    }

    /// Aggregate server assimilation throughput (results/second) with `pn`
    /// parameter servers at a nominal light load.
    pub fn server_throughput(&self, server: &InstanceSpec, pn: usize) -> f64 {
        pn as f64 / self.assim_s(server, pn, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::table1;

    #[test]
    fn reference_t2_is_about_2_4_min() {
        let m = ComputeModel::default();
        let c = table1::client_8v_2_2();
        let t = m.subtask_s(&c, 2);
        // Two resident tasks on 8 vCPUs wanting 4 cores each: no sharing,
        // just the linear overhead.
        assert!((144.0..=160.0).contains(&t), "{t}");
        assert!(t / 60.0 <= 2.6, "t_e = {} min", t / 60.0);
    }

    #[test]
    fn faster_clock_is_faster() {
        let m = ComputeModel::default();
        let slow = m.subtask_s(&table1::client_8v_2_2(), 1);
        let fast = m.subtask_s(&table1::client_8v_2_8(), 1);
        assert!(fast < slow);
    }

    #[test]
    fn oversubscription_slows_tasks() {
        let m = ComputeModel::default();
        let c = table1::client_8v_2_2();
        let t2 = m.subtask_s(&c, 2);
        let t4 = m.subtask_s(&c, 4);
        let t8 = m.subtask_s(&c, 8);
        let t16 = m.subtask_s(&c, 16);
        assert!(t4 > t2, "linear overhead: {t2} vs {t4}");
        assert!(t8 > t4);
        assert!(t16 > 2.0 * t8, "paging + core sharing must bite at T16");
    }

    #[test]
    fn throughput_peaks_near_t8_for_32gb_client() {
        // §IV-B: "the throughput of the client computing instances in our
        // experiments decreases after T8".
        let m = ComputeModel::default();
        let peak = m.peak_concurrency(&table1::client_8v_2_2());
        assert!((7..=9).contains(&peak), "peak at T{peak}");
        let th8 = m.client_throughput(&table1::client_8v_2_2(), 8);
        let th12 = m.client_throughput(&table1::client_8v_2_2(), 12);
        assert!(th12 < th8, "throughput must fall past the peak");
    }

    #[test]
    fn low_ram_client_pages_earlier() {
        let m = ComputeModel::default();
        let peak_15gb = m.peak_concurrency(&table1::client_8v_2_8());
        let peak_32gb = m.peak_concurrency(&table1::client_8v_2_5());
        assert!(
            peak_15gb < peak_32gb,
            "15 GB client peaks at T{peak_15gb}, 32 GB at T{peak_32gb}"
        );
    }

    #[test]
    fn server_throughput_saturates_past_p5() {
        // §IV-B: "the throughput of the server computing instance in our
        // experimental setup decreases after P5".
        let m = ComputeModel::default();
        let s = table1::server();
        let th1 = m.server_throughput(&s, 1);
        let th3 = m.server_throughput(&s, 3);
        let th5 = m.server_throughput(&s, 5);
        let th8 = m.server_throughput(&s, 8);
        assert!(th3 > 2.5 * th1, "scaling P1->P3 is near-linear");
        assert!(th5 > th3);
        // Past ~5.3 workers the cores are oversubscribed: no further gain.
        assert!(th8 <= th5 * 1.01, "P8 {th8} vs P5 {th5}");
    }

    #[test]
    fn p5c5t2_epoch_budget_is_paper_scale() {
        // 50 subtasks over 5 clients × T2: 5 waves of ~2.4 min ≈ 12 min of
        // client time per epoch; 40 epochs ≈ 8 h. Assimilation overlaps.
        let m = ComputeModel::default();
        let c = table1::client_8v_2_2();
        let per_epoch_client = (50.0 / 10.0) * m.subtask_s(&c, 2);
        let total_h = 40.0 * per_epoch_client / 3600.0;
        assert!(total_h > 6.0 && total_h < 11.0, "{total_h} h");
    }

    #[test]
    fn sixteen_vcpu_client_absorbs_more_tasks() {
        let m = ComputeModel::default();
        let t8_small = m.subtask_s(&table1::client_8v_2_5(), 8);
        let t8_big = m.subtask_s(&table1::client_16v_2_8(), 8);
        assert!(t8_big < t8_small);
    }
}
