//! # vc-simnet
//!
//! Discrete-event simulation of a volunteer-computing-like fleet: the
//! substrate that stands in for the paper's AWS testbed.
//!
//! The paper's evaluation plots accuracy against *wall-clock training time*
//! on a fleet of heterogeneous cloud instances (Table I), with WAN latency
//! and preemptible-instance terminations. Reproducing those axes without
//! the testbed requires simulating time while computing accuracy for real:
//!
//! * [`SimTime`]/[`EventQueue`] — a deterministic discrete-event core.
//! * [`InstanceSpec`]/[`table1`] — the paper's instance catalog with vCPU,
//!   clock, RAM, bandwidth and AWS-calibrated prices.
//! * [`ComputeModel`] — client subtask service times under concurrency
//!   (vertical scaling, §IV-B) and server assimilation times under multiple
//!   parameter servers, including the saturation effects the paper reports
//!   ("client throughput decreases after T8, server throughput after P5").
//! * [`NetworkModel`] — bandwidth-based transfer times for model/parameter/
//!   shard files plus lognormal WAN jitter (variable network latency,
//!   §III-B).
//! * [`PreemptionModel`] — Bernoulli-per-subtask and exponential-lifetime
//!   instance terminations (§IV-E).
//!
//! The middleware and the VC-ASGD driver schedule *real* training
//! computations at simulated completion times, so asynchrony, staleness and
//! assimilation order are faithful to the modelled fleet.

pub mod compute;
pub mod event;
pub mod network;
pub mod preempt;
pub mod specs;
pub mod time;

pub use compute::ComputeModel;
pub use event::EventQueue;
pub use network::NetworkModel;
pub use preempt::PreemptionModel;
pub use specs::{generated_fleet, table1, InstanceSpec};
pub use time::SimTime;
