//! Instance catalog: the paper's Table I plus AWS-calibrated pricing.

use serde::{Deserialize, Serialize};

/// A cloud-instance configuration (one row of Table I) with pricing.
///
/// Prices are calibrated to §IV-E: the P5C5T2 fleet of five 8-vCPU/32-GB
/// clients costs $1.67/h on standard instances and $0.50/h preemptible
/// (a 70 % saving), i.e. $0.334 and $0.10 per instance-hour for that type;
/// other types scale by vCPU count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Catalog name, e.g. `"client-8v-2.2"`.
    pub name: String,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Memory in GiB.
    pub ram_gb: f64,
    /// Network bandwidth ceiling in Gbit/s ("up to" in Table I).
    pub bandwidth_gbps: f64,
    /// On-demand (standard) price, USD per hour.
    pub hourly_usd: f64,
    /// Preemptible (spot) price, USD per hour.
    pub hourly_usd_preemptible: f64,
}

impl InstanceSpec {
    /// Relative single-core speed vs the 2.2 GHz reference client.
    pub fn core_speed(&self) -> f64 {
        self.clock_ghz / 2.2
    }

    /// Preemptible discount as a fraction (0.7 = 70 % cheaper).
    pub fn preemptible_discount(&self) -> f64 {
        1.0 - self.hourly_usd_preemptible / self.hourly_usd
    }
}

/// The paper's Table I, plus pricing derived from §IV-E.
pub mod table1 {
    use super::InstanceSpec;

    /// Standard-instance price per vCPU-hour implied by the P5C5T2 fleet
    /// ($1.67/h over 40 vCPUs).
    pub const USD_PER_VCPU_HOUR: f64 = 1.67 / 40.0;

    /// Preemptible price per vCPU-hour implied by the same fleet at $0.50/h.
    pub const USD_PER_VCPU_HOUR_PREEMPTIBLE: f64 = 0.50 / 40.0;

    fn price(vcpus: u32) -> (f64, f64) {
        (
            vcpus as f64 * USD_PER_VCPU_HOUR,
            vcpus as f64 * USD_PER_VCPU_HOUR_PREEMPTIBLE,
        )
    }

    /// The server instance: 8 vCPU, 2.3 GHz, 61 GB, up to 10 Gbps.
    pub fn server() -> InstanceSpec {
        let (std, pre) = price(8);
        InstanceSpec {
            name: "server-8v-2.3".into(),
            vcpus: 8,
            clock_ghz: 2.3,
            ram_gb: 61.0,
            bandwidth_gbps: 10.0,
            hourly_usd: std,
            hourly_usd_preemptible: pre,
        }
    }

    /// Client row 1: 8 vCPU, 2.2 GHz, 32 GB, up to 5 Gbps.
    pub fn client_8v_2_2() -> InstanceSpec {
        let (std, pre) = price(8);
        InstanceSpec {
            name: "client-8v-2.2".into(),
            vcpus: 8,
            clock_ghz: 2.2,
            ram_gb: 32.0,
            bandwidth_gbps: 5.0,
            hourly_usd: std,
            hourly_usd_preemptible: pre,
        }
    }

    /// Client row 2: 8 vCPU, 2.5 GHz, 32 GB, up to 5 Gbps.
    pub fn client_8v_2_5() -> InstanceSpec {
        let (std, pre) = price(8);
        InstanceSpec {
            name: "client-8v-2.5".into(),
            vcpus: 8,
            clock_ghz: 2.5,
            ram_gb: 32.0,
            bandwidth_gbps: 5.0,
            hourly_usd: std,
            hourly_usd_preemptible: pre,
        }
    }

    /// Client row 3: 8 vCPU, 2.8 GHz, 15 GB, up to 2 Gbps.
    pub fn client_8v_2_8() -> InstanceSpec {
        let (std, pre) = price(8);
        InstanceSpec {
            name: "client-8v-2.8".into(),
            vcpus: 8,
            clock_ghz: 2.8,
            ram_gb: 15.0,
            bandwidth_gbps: 2.0,
            hourly_usd: std,
            hourly_usd_preemptible: pre,
        }
    }

    /// Client row 4: 16 vCPU, 2.8 GHz, 30 GB, up to 2 Gbps.
    pub fn client_16v_2_8() -> InstanceSpec {
        let (std, pre) = price(16);
        InstanceSpec {
            name: "client-16v-2.8".into(),
            vcpus: 16,
            clock_ghz: 2.8,
            ram_gb: 30.0,
            bandwidth_gbps: 2.0,
            hourly_usd: std,
            hourly_usd_preemptible: pre,
        }
    }

    /// All four client rows, in table order.
    pub fn client_types() -> Vec<InstanceSpec> {
        vec![
            client_8v_2_2(),
            client_8v_2_5(),
            client_8v_2_8(),
            client_16v_2_8(),
        ]
    }

    /// A homogeneous fleet of `n` reference clients (the P5C5T2 fleet shape).
    pub fn uniform_fleet(n: usize) -> Vec<InstanceSpec> {
        (0..n).map(|_| client_8v_2_2()).collect()
    }

    /// A heterogeneous fleet cycling through the client catalog —
    /// the "different types of instances" configuration of §III-E.
    pub fn mixed_fleet(n: usize) -> Vec<InstanceSpec> {
        let types = client_types();
        (0..n).map(|i| types[i % types.len()].clone()).collect()
    }
}

/// Synthesizes a volunteer fleet of `n` hosts with a heavy-tailed speed
/// distribution, in the style of BOINC host-population generators (cf. the
/// dslab BOINC simulator): volunteer hardware is mostly mid-range with a
/// slow tail and a few fast outliers, unlike the four-row cloud catalog of
/// Table I. Deterministic in `(n, seed)` — the population is part of the
/// scenario, so fleet-scale DES runs replay bit-for-bit.
///
/// Speeds (clock GHz) are log-uniform in `[1.1, 3.52]` around the 2.2 GHz
/// reference; vCPU counts follow a 2/4/8/16 mix skewed toward small hosts;
/// RAM and bandwidth scale with size. Churn is *not* encoded here — host
/// lifetime lives in the driver's fault plan, keyed by the same scenario
/// seed.
pub fn generated_fleet(n: usize, seed: u64) -> Vec<InstanceSpec> {
    // Self-contained splitmix64 stream: no external RNG state, identical
    // output on every platform, one draw sequence per (n, seed).
    let mut state = seed ^ 0x9e3779b97f4a7c15 ^ (n as u64).rotate_left(32);
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut unit = move || (next() >> 11) as f64 / (1u64 << 53) as f64;
    (0..n)
        .map(|i| {
            // Log-uniform over [0.5, 1.6] × reference ⇒ mostly mid-range,
            // thin fast tail.
            let speed = 0.5 * (1.6f64 / 0.5).powf(unit());
            let clock_ghz = (2.2 * speed * 100.0).round() / 100.0;
            let vcpus = match (unit() * 10.0) as u32 {
                0..=3 => 2,
                4..=6 => 4,
                7..=8 => 8,
                _ => 16,
            };
            let ram_gb = vcpus as f64 * 2.0;
            let bandwidth_gbps = match vcpus {
                2 => 0.5,
                4 => 1.0,
                8 => 2.0,
                _ => 5.0,
            };
            let (hourly_usd, hourly_usd_preemptible) = (
                vcpus as f64 * table1::USD_PER_VCPU_HOUR,
                vcpus as f64 * table1::USD_PER_VCPU_HOUR_PREEMPTIBLE,
            );
            InstanceSpec {
                name: format!("gen-{i}-{vcpus}v-{clock_ghz}"),
                vcpus,
                clock_ghz,
                ram_gb,
                bandwidth_gbps,
                hourly_usd,
                hourly_usd_preemptible,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::table1;

    #[test]
    fn table1_matches_paper_rows() {
        let s = table1::server();
        assert_eq!(
            (s.vcpus, s.clock_ghz, s.ram_gb, s.bandwidth_gbps),
            (8, 2.3, 61.0, 10.0)
        );
        let c = table1::client_types();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].vcpus, 8);
        assert_eq!(c[0].clock_ghz, 2.2);
        assert_eq!(c[2].ram_gb, 15.0);
        assert_eq!(c[3].vcpus, 16);
        assert_eq!(c[3].bandwidth_gbps, 2.0);
    }

    #[test]
    fn p5c5_fleet_price_matches_sec4e() {
        // 5 × 8-vCPU clients: $1.67/h standard, $0.50/h preemptible.
        let fleet = table1::uniform_fleet(5);
        let std: f64 = fleet.iter().map(|c| c.hourly_usd).sum();
        let pre: f64 = fleet.iter().map(|c| c.hourly_usd_preemptible).sum();
        assert!((std - 1.67).abs() < 1e-9, "{std}");
        assert!((pre - 0.50).abs() < 1e-9, "{pre}");
        // The paper's 8-hour experiment: $13.4 vs $4.
        assert!((std * 8.0 - 13.36).abs() < 0.1);
        assert!((pre * 8.0 - 4.0).abs() < 0.05);
    }

    #[test]
    fn preemptible_discount_is_70_percent() {
        for c in table1::client_types() {
            let d = c.preemptible_discount();
            assert!((d - 0.7006).abs() < 0.01, "{d}");
        }
    }

    #[test]
    fn core_speed_is_relative_to_reference() {
        assert!((table1::client_8v_2_2().core_speed() - 1.0).abs() < 1e-12);
        assert!(table1::client_8v_2_8().core_speed() > 1.2);
    }

    #[test]
    fn mixed_fleet_cycles_types() {
        let f = table1::mixed_fleet(6);
        assert_eq!(f[0].name, f[4].name);
        assert_ne!(f[0].name, f[1].name);
    }

    #[test]
    fn generated_fleet_is_deterministic_and_heterogeneous() {
        let a = super::generated_fleet(1000, 7);
        let b = super::generated_fleet(1000, 7);
        assert_eq!(a, b, "same (n, seed) must be identical");
        let c = super::generated_fleet(1000, 8);
        assert_ne!(a, c, "the seed must matter");
        // Speeds live in the documented log-uniform band and actually vary.
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for h in &a {
            assert!(
                h.clock_ghz >= 1.09 && h.clock_ghz <= 3.53,
                "{}",
                h.clock_ghz
            );
            lo = lo.min(h.clock_ghz);
            hi = hi.max(h.clock_ghz);
        }
        assert!(hi / lo > 2.0, "population spans slow and fast hosts");
        // The vCPU mix skews toward small hosts.
        let small = a.iter().filter(|h| h.vcpus <= 4).count();
        assert!(small > a.len() / 2, "{small}/1000 small hosts");
    }
}
