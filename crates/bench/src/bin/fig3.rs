//! Figure 3 — total training time for {P1C3, P3C3, P5C5} × {T2, T4, T8}
//! at α = 0.95 over a fixed epoch budget.
//!
//! Expected shape (paper): with one parameter server (P1C3), time drops
//! from T2 to T4 but *rises* again at T8 — three clients at T8 outrun a
//! single assimilator. P3C3T8 recovers (about 3 hours faster than P1C3T8
//! over 40 epochs). With P5C5 the imbalance grows with Tn, so time rises
//! monotonically from T2.
//!
//! Timing is independent of the learned values, so this runner uses the
//! driver's `timing_only` mode and reproduces the full 40-epoch clock in
//! milliseconds.
//!
//! Run: `cargo run -p vc-bench --bin fig3 --release`

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};
use vc_bench::write_results;

fn main() {
    let epochs = 40;
    let groups = [(1usize, 3usize), (3, 3), (5, 5)];
    let tns = [2usize, 4, 8];

    let mut csv = String::from("config,tn,total_hours\n");
    println!("Figure 3: total training time (hours), {epochs} epochs, alpha = 0.95");
    println!("{:<8} {:>8} {:>8} {:>8}", "", "T2", "T4", "T8");
    for (pn, cn) in groups {
        let mut row = format!("{:<8}", format!("P{pn}C{cn}"));
        for tn in tns {
            let mut cfg = JobConfig::paper_default(42).with_pct(pn, cn, tn);
            cfg.alpha = AlphaSchedule::Const(0.95);
            cfg.epochs = epochs;
            cfg.timing_only = true;
            let report = run_job(cfg).expect("valid config");
            row.push_str(&format!(" {:>8.2}", report.total_time_h));
            csv.push_str(&format!("P{pn}C{cn},{tn},{:.4}\n", report.total_time_h));
        }
        println!("{row}");
    }
    write_results("fig3.csv", &csv);

    // The paper's two headline observations, checked programmatically so a
    // calibration regression is loud.
    let time = |pn: usize, cn: usize, tn: usize| -> f64 {
        let mut cfg = JobConfig::paper_default(42).with_pct(pn, cn, tn);
        cfg.alpha = AlphaSchedule::Const(0.95);
        cfg.epochs = epochs;
        cfg.timing_only = true;
        run_job(cfg).unwrap().total_time_h
    };
    let p1t4 = time(1, 3, 4);
    let p1t8 = time(1, 3, 8);
    let p3t8 = time(3, 3, 8);
    println!("\nShape checks:");
    println!(
        "  P1C3: T4 {:.2}h {} T8 {:.2}h (paper: T8 slower — server bound)",
        p1t4,
        if p1t8 > p1t4 { "<" } else { "!>" },
        p1t8
    );
    println!(
        "  P3C3T8 is {:.2}h faster than P1C3T8 (paper: ~3h faster)",
        p1t8 - p3t8
    );
}
