//! Threaded-runtime latency benchmark.
//!
//! Runs a small real fleet (OS threads, real SGD) three times — fault-free,
//! under a kill/respawn storm, and with replication-2/quorum-2 redundancy —
//! and writes `results/BENCH_runtime.json` with the latency percentiles the
//! telemetry registry collected: assimilation latency, per-operation store
//! latencies, worker training time, and the eventual-mode staleness
//! distribution.
//!
//! `--smoke` shrinks every run to one epoch for CI.

use serde::Serialize;
use vc_bench::write_results;
use vc_runtime::{run_runtime, RuntimeConfig, RuntimeReport};
use vc_telemetry::HistogramSnapshot;

/// Percentile summary of one histogram, in its native unit.
#[derive(Serialize)]
struct Pcts {
    count: u64,
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

fn pcts(h: &HistogramSnapshot) -> Pcts {
    Pcts {
        count: h.count,
        mean: h.mean(),
        p50: h.quantile(0.50),
        p95: h.quantile(0.95),
        p99: h.quantile(0.99),
    }
}

/// One run's latency summary (seconds unless the name says otherwise).
#[derive(Serialize)]
struct RunSummary {
    label: String,
    wall_s: f64,
    kills: u64,
    respawns: u64,
    assim_latency_s: Pcts,
    store_read_s: Pcts,
    store_write_s: Pcts,
    store_transact_s: Pcts,
    worker_train_s: Pcts,
    staleness_versions: Pcts,
}

fn summarize(name: &str, report: &RuntimeReport) -> RunSummary {
    let t = &report.telemetry;
    println!(
        "{name}: wall {:.2}s, assim p50 {:.4}s p99 {:.4}s ({} samples), \
         store write p50 {:.6}s, train p50 {:.4}s",
        report.wall_s,
        t.assim_latency_s.quantile(0.50),
        t.assim_latency_s.quantile(0.99),
        t.assim_latency_s.count,
        t.store_write_s.quantile(0.50),
        t.worker_train_s.quantile(0.50),
    );
    RunSummary {
        label: report.label.clone(),
        wall_s: report.wall_s,
        kills: report.kills,
        respawns: report.respawns,
        assim_latency_s: pcts(&t.assim_latency_s),
        store_read_s: pcts(&t.store_read_s),
        store_write_s: pcts(&t.store_write_s),
        store_transact_s: pcts(&t.store_transact_s),
        worker_train_s: pcts(&t.worker_train_s),
        staleness_versions: pcts(&t.staleness_versions),
    }
}

#[derive(Serialize)]
struct BenchRuntime {
    fault_free: RunSummary,
    chaos: RunSummary,
    quorum: RunSummary,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let epochs = if smoke { 1 } else { 3 };
    println!("# Threaded-runtime latency benchmark\n");

    let mut clean = RuntimeConfig::test_small(7);
    clean.job.cn = 4;
    clean.job.pn = 2;
    clean.job.tn = 2;
    clean.job.epochs = epochs;
    let clean_report = run_runtime(clean).expect("fault-free run");

    let mut chaos = RuntimeConfig::test_small(7);
    chaos.job.cn = 5;
    chaos.job.pn = 2;
    chaos.job.tn = 2;
    chaos.job.epochs = epochs;
    chaos.faults.kill_hosts = vec![0, 1];
    chaos.faults.kill_on_nth_assignment = 2;
    chaos.faults.respawn_after_s = Some(0.5);
    let chaos_report = run_runtime(chaos).expect("chaos run");

    // Redundant computing: every workunit runs twice and needs two
    // agreeing results — the latency cost of the byzantine defense.
    let mut quorum = RuntimeConfig::test_small(7);
    quorum.job.cn = 5;
    quorum.job.pn = 2;
    quorum.job.tn = 2;
    quorum.job.epochs = epochs;
    quorum.job.middleware.replication = 2;
    quorum.job.middleware.quorum = 2;
    let quorum_report = run_runtime(quorum).expect("quorum run");

    let out = BenchRuntime {
        fault_free: summarize("fault-free", &clean_report),
        chaos: summarize("chaos", &chaos_report),
        quorum: summarize("quorum", &quorum_report),
    };
    let json = serde_json::to_string_pretty(&out).expect("summary serializes");
    write_results("BENCH_runtime.json", &json);
}
