//! Scheduler hot-path benchmark: per-event cost of the BOINC server at
//! volunteer-fleet scale.
//!
//! Drives [`vc_middleware::BoincServer`] directly — no neural network, no
//! DES — through repeated cycles of its hot paths, at 1k / 10k / 100k
//! synthesized hosts ([`vc_simnet::generated_fleet`]):
//!
//! - **assign polls** — `request_work` calls that issue an assignment
//!   (sticky pick / FIFO pick, timer arm, ledger updates);
//! - **idle polls** — `request_work` calls that find no assignable work;
//! - **no-op deadline scans** — `scan_timeouts` with every armed deadline
//!   in the future (the per-event transitioner call: must be O(1), *not*
//!   O(workunits) as before the rewrite);
//! - **deadline drains** — one scan expiring a full fleet's assignments
//!   (O(due · log n));
//! - **reports** — `report_result` through quorum decision.
//!
//! Writes `results/BENCH_sched.json`. `--smoke` runs tiny fleets, asserts
//! sanity, writes nothing (CI guard). `--check` additionally asserts the
//! flat-cost claim: per-poll cost at the largest fleet within 4× of the
//! smallest (the pre-rewrite scheduler failed this by orders of
//! magnitude — every poll paid an O(workunits) deadline scan).

use serde::Serialize;
use std::time::Instant;
use vc_middleware::server::{BoincServer, MiddlewareConfig};
use vc_middleware::{HostId, ReportStatus, WuId};
use vc_simnet::{generated_fleet, SimTime};

#[derive(Serialize)]
struct SizeRow {
    hosts: usize,
    /// Workunits enqueued per cycle (= hosts, one slot each is kept busy).
    workunits_per_cycle: usize,
    cycles: usize,
    assign_polls_per_s: f64,
    idle_polls_per_s: f64,
    noop_scans_per_s: f64,
    drain_expiries_per_s: f64,
    reports_per_s: f64,
    /// Mean assign-poll cost, microseconds — the `--check` metric.
    per_poll_us: f64,
}

#[derive(Serialize)]
struct BenchSched {
    shard_space: usize,
    sizes: Vec<SizeRow>,
}

const SHARD_SPACE: usize = 256;

/// One full hot-path cycle at `n` hosts, repeated `cycles` times;
/// wall-clock per phase accumulated across cycles.
fn bench_fleet(n: usize, cycles: usize, noop_scans_per_cycle: usize) -> SizeRow {
    let fleet = generated_fleet(n, 42)
        .into_iter()
        .map(|spec| (spec, 2usize))
        .collect();
    // Fetch backoff off: a timed-out host must poll again immediately in
    // the reissue phase, not sit out a simulated backoff window.
    let cfg = MiddlewareConfig {
        backoff_base_s: 0.0,
        backoff_max_s: 0.0,
        ..Default::default()
    };
    let mut server = BoincServer::new(cfg, fleet);

    let mut assign_s = 0.0f64;
    let mut idle_s = 0.0f64;
    let mut noop_s = 0.0f64;
    let mut drain_s = 0.0f64;
    let mut report_s = 0.0f64;
    let mut assigned = 0usize;
    let mut idle_polls = 0usize;
    let mut noop_scans = 0usize;
    let mut drained = 0usize;
    let mut reported = 0usize;

    for cycle in 0..cycles {
        // Cycle epochs are spaced far enough apart that every adaptive
        // deadline (clamped to ≤ 3600 s) from the previous cycle is long
        // gone.
        let t0 = SimTime::from_secs(cycle as f64 * 10_000.0);
        for i in 0..n {
            server.add_workunit(cycle + 1, i % SHARD_SPACE, 1, t0);
        }

        // Assign: one poll per host issues one workunit (hosts have two
        // slots; the queue empties after n issues).
        let t = Instant::now();
        for h in 0..n as u32 {
            let a = server.request_work(HostId(h), t0);
            assert!(a.is_some(), "queued work must be assignable");
        }
        assign_s += t.elapsed().as_secs_f64();
        assigned += n;

        // Idle: every host has a free slot but the queue is empty.
        let t = Instant::now();
        for h in 0..n as u32 {
            assert!(server.request_work(HostId(h), t0).is_none());
        }
        idle_s += t.elapsed().as_secs_f64();
        idle_polls += n;

        // No-op deadline scans: n timers armed, none due.
        let t_scan = t0 + 10.0;
        let t = Instant::now();
        for _ in 0..noop_scans_per_cycle {
            assert!(server.scan_timeouts(t_scan).is_empty());
        }
        noop_s += t.elapsed().as_secs_f64();
        noop_scans += noop_scans_per_cycle;

        // Drain: one virtual-clock jump past every deadline expires the
        // whole in-flight fleet in a single scan.
        let td = t0 + 5_000.0;
        let t = Instant::now();
        let expired = server.scan_timeouts(td);
        drain_s += t.elapsed().as_secs_f64();
        assert_eq!(expired.len(), n, "every assignment must expire");
        drained += n;

        // Reissue the recovered work, then report it all the way through
        // quorum decision.
        let mut issued: Vec<(WuId, u32)> = Vec::with_capacity(n);
        for h in 0..n as u32 {
            let a = server
                .request_work(HostId(h), td)
                .expect("requeued work reissues");
            issued.push((a.wu.id, h));
        }
        let tr = td + 1.0;
        let t = Instant::now();
        for &(wu, h) in &issued {
            let st = server.report_result(wu, HostId(h), &[1.0], tr);
            assert_eq!(st, ReportStatus::Accepted);
        }
        report_s += t.elapsed().as_secs_f64();
        reported += n;
        assert!(server.all_done(), "cycle must complete every workunit");
    }

    SizeRow {
        hosts: n,
        workunits_per_cycle: n,
        cycles,
        assign_polls_per_s: assigned as f64 / assign_s,
        idle_polls_per_s: idle_polls as f64 / idle_s,
        noop_scans_per_s: noop_scans as f64 / noop_s,
        drain_expiries_per_s: drained as f64 / drain_s,
        reports_per_s: reported as f64 / report_s,
        per_poll_us: assign_s / assigned as f64 * 1e6,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    // Cycles scale inversely with fleet size so every row measures a
    // comparable number of operations.
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(200, 5), (1_000, 2)]
    } else {
        vec![(1_000, 50), (10_000, 5), (100_000, 1)]
    };
    let noop_scans_per_cycle = 1_000;

    let mut rows = Vec::new();
    for &(n, cycles) in &sizes {
        let row = bench_fleet(n, cycles, noop_scans_per_cycle);
        println!(
            "hosts {:>7}: assign {:>9.0}/s ({:>7.3} µs/poll)  idle {:>9.0}/s  noop-scan {:>9.0}/s  drain {:>9.0}/s  report {:>9.0}/s",
            row.hosts,
            row.assign_polls_per_s,
            row.per_poll_us,
            row.idle_polls_per_s,
            row.noop_scans_per_s,
            row.drain_expiries_per_s,
            row.reports_per_s,
        );
        rows.push(row);
    }

    for r in &rows {
        for (name, v) in [
            ("assign", r.assign_polls_per_s),
            ("idle", r.idle_polls_per_s),
            ("noop-scan", r.noop_scans_per_s),
            ("drain", r.drain_expiries_per_s),
            ("report", r.reports_per_s),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "bad {name} rate at {} hosts: {v}",
                r.hosts
            );
        }
    }

    if check {
        let small = rows.first().expect("at least one size");
        let large = rows.last().expect("at least one size");
        let ratio = large.per_poll_us / small.per_poll_us;
        assert!(
            ratio <= 4.0,
            "per-poll cost must stay flat with fleet size: {:.3} µs at {} hosts vs {:.3} µs at {} hosts ({ratio:.2}×, limit 4×)",
            large.per_poll_us,
            large.hosts,
            small.per_poll_us,
            small.hosts
        );
        println!(
            "check: per-poll {:.3} µs @ {} hosts ≤ 4 × {:.3} µs @ {} hosts ({ratio:.2}×) ✓",
            large.per_poll_us, large.hosts, small.per_poll_us, small.hosts
        );
    }

    if smoke {
        println!("smoke OK (nothing written)");
        return;
    }
    let out = BenchSched {
        shard_space: SHARD_SPACE,
        sizes: rows,
    };
    vc_bench::write_results(
        "BENCH_sched.json",
        &serde_json::to_string_pretty(&out).expect("serialize"),
    );
}
