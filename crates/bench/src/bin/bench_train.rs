//! Training-throughput benchmark: before/after numbers for the compute
//! substrate (blocked kernels + persistent pool + zero-alloc workspace).
//!
//! Three sections, all written to `results/BENCH_train.json`:
//!
//! 1. **Kernels** — GFLOP/s of the three matmul shapes at 128³/256³/512³,
//!    the frozen pre-optimization kernels ([`vc_bench::legacy`]) against the
//!    current blocked micro-kernels.
//! 2. **End-to-end** — optimizer steps/sec training the paper's `small_cnn`
//!    on `[1, 28, 28]` inputs, the legacy layer path against
//!    [`vc_optim::train_minibatch_ws`].
//! 3. **Scaling** — blocked-matmul GFLOP/s as the persistent pool's thread
//!    cap sweeps 1..=max, the serial-vs-pool curve.
//!
//! `--smoke` runs the whole thing on tiny shapes in well under a second,
//! asserts the results are finite/sane, and writes nothing — the CI guard.

use serde::Serialize;
use std::time::Instant;
use vc_bench::legacy::{legacy_matmul, legacy_matmul_a_bt, legacy_matmul_at_b, LegacySmallCnn};
use vc_nn::spec::small_cnn;
use vc_optim::{train_minibatch_ws, OptimizerSpec, TrainWorkspace};
use vc_tensor::ops::{matmul, matmul_a_bt, matmul_at_b};
use vc_tensor::{NormalSampler, Tensor};

/// Minimum wall-clock time over `reps` runs of `f` (after one warmup call).
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup (first-touch, pool spawn, page faults)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct KernelRow {
    /// Which matmul variant (`matmul` = A·B, `at_b` = Aᵀ·B, `a_bt` = A·Bᵀ).
    op: String,
    /// Square problem size (m = n = k).
    n: usize,
    /// Pre-PR kernel throughput, GFLOP/s.
    legacy_gflops: f64,
    /// Blocked micro-kernel throughput, GFLOP/s.
    blocked_gflops: f64,
    /// blocked / legacy.
    speedup: f64,
}

#[derive(Serialize)]
struct E2e {
    /// Model + data shape the steps ran on.
    model: String,
    batch_size: usize,
    timed_steps: usize,
    /// Legacy layer path (clone churn, fresh allocations, old kernels).
    legacy_steps_per_s: f64,
    /// Workspace path ([`train_minibatch_ws`] with fused ReLU epilogues).
    ws_steps_per_s: f64,
    /// ws / legacy.
    speedup: f64,
}

#[derive(Serialize)]
struct ScalingPoint {
    threads: usize,
    gflops: f64,
}

#[derive(Serialize)]
struct BenchTrain {
    /// Persistent-pool worker count the blocked numbers used.
    pool_threads: usize,
    /// Spawn-per-call thread count the legacy numbers used.
    legacy_threads: usize,
    kernels: Vec<KernelRow>,
    e2e: E2e,
    /// Blocked `matmul` GFLOP/s at the scaling size vs pool thread cap.
    scaling_n: usize,
    scaling: Vec<ScalingPoint>,
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

fn bench_kernels(sizes: &[usize], reps: usize) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    let mut s = NormalSampler::seed_from(7);
    for &n in sizes {
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
        let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
        let pairs: [(&'static str, f64, f64); 3] = [
            (
                "matmul",
                time_best(reps, || drop(legacy_matmul(&a, &b))),
                time_best(reps, || drop(matmul(&a, &b))),
            ),
            (
                "at_b",
                time_best(reps, || drop(legacy_matmul_at_b(&a, &b))),
                time_best(reps, || drop(matmul_at_b(&a, &b))),
            ),
            (
                "a_bt",
                time_best(reps, || drop(legacy_matmul_a_bt(&a, &b))),
                time_best(reps, || drop(matmul_a_bt(&a, &b))),
            ),
        ];
        for (op, t_legacy, t_blocked) in pairs {
            let row = KernelRow {
                op: op.to_string(),
                n,
                legacy_gflops: gflops(n, t_legacy),
                blocked_gflops: gflops(n, t_blocked),
                speedup: t_legacy / t_blocked,
            };
            println!(
                "kernel {op:>6} n={n:<4} legacy {:8.2} GFLOP/s  blocked {:8.2} GFLOP/s  ({:.2}x)",
                row.legacy_gflops, row.blocked_gflops, row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn bench_e2e(input: [usize; 3], samples: usize, batch: usize, timed_epochs: usize) -> E2e {
    let classes = 10;
    let lr = 0.01f32;
    let mut s = NormalSampler::seed_from(11);
    let dims = [samples, input[0], input[1], input[2]];
    let images = Tensor::randn(&dims, 0.0, 1.0, &mut s);
    let labels: Vec<usize> = (0..samples).map(|i| i % classes).collect();
    let sample_len = input.iter().product::<usize>();
    let steps_per_epoch = samples.div_ceil(batch);
    let timed_steps = timed_epochs * steps_per_epoch;

    // Legacy path: in-order batches, fresh batch tensor per step, exactly
    // the allocation profile of the seed trainer.
    let mut net = LegacySmallCnn::new(input, classes, 42);
    let run_legacy_epoch = |net: &mut LegacySmallCnn| {
        for (step, chunk) in labels.chunks(batch).enumerate() {
            let start = step * batch * sample_len;
            let xb = Tensor::from_vec(
                images.data()[start..start + chunk.len() * sample_len].to_vec(),
                &[chunk.len(), input[0], input[1], input[2]],
            );
            let loss = net.train_step(&xb, chunk, lr);
            assert!(loss.is_finite(), "legacy path diverged");
        }
    };
    run_legacy_epoch(&mut net); // warmup
    let t0 = Instant::now();
    for _ in 0..timed_epochs {
        run_legacy_epoch(&mut net);
    }
    let legacy_steps_per_s = timed_steps as f64 / t0.elapsed().as_secs_f64();

    // Workspace path: the real production trainer, same SGD step rule.
    use rand::SeedableRng;
    let mut model = small_cnn(&input, classes).build(42);
    let mut opt = OptimizerSpec::Sgd { lr }.build(model.params_flat().len());
    let mut tws = TrainWorkspace::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    // Warmup epoch fills the workspace pools.
    let stats = train_minibatch_ws(
        &mut model, &mut opt, &images, &labels, batch, 1, 5.0, &mut rng, &mut tws, None,
    );
    assert!(stats.mean_loss.is_finite(), "ws path diverged");
    let t0 = Instant::now();
    train_minibatch_ws(
        &mut model,
        &mut opt,
        &images,
        &labels,
        batch,
        timed_epochs,
        5.0,
        &mut rng,
        &mut tws,
        None,
    );
    let ws_steps_per_s = timed_steps as f64 / t0.elapsed().as_secs_f64();

    let e2e = E2e {
        model: format!("small_cnn {:?} classes={classes}", input),
        batch_size: batch,
        timed_steps,
        legacy_steps_per_s,
        ws_steps_per_s,
        speedup: ws_steps_per_s / legacy_steps_per_s,
    };
    println!(
        "e2e {} batch={batch}: legacy {legacy_steps_per_s:8.2} steps/s  ws {ws_steps_per_s:8.2} steps/s  ({:.2}x)",
        e2e.model, e2e.speedup
    );
    e2e
}

fn bench_scaling(n: usize, reps: usize) -> Vec<ScalingPoint> {
    let mut s = NormalSampler::seed_from(13);
    let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
    let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
    let max = rayon::max_threads();
    let mut points = Vec::new();
    for t in 1..=max {
        rayon::set_thread_cap(t);
        let secs = time_best(reps, || drop(matmul(&a, &b)));
        let p = ScalingPoint {
            threads: t,
            gflops: gflops(n, secs),
        };
        println!("scaling n={n} threads={t}: {:.2} GFLOP/s", p.gflops);
        points.push(p);
    }
    rayon::set_thread_cap(max);
    points
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, reps, input, samples, batch, epochs, scaling_n): (
        Vec<usize>,
        usize,
        [usize; 3],
        usize,
        usize,
        usize,
        usize,
    ) = if smoke {
        (vec![32, 64], 2, [1, 8, 8], 32, 8, 1, 64)
    } else {
        (vec![128, 256, 512], 3, [1, 28, 28], 256, 32, 2, 256)
    };

    let kernels = bench_kernels(&sizes, reps);
    let e2e = bench_e2e(input, samples, batch, epochs);
    let scaling = bench_scaling(scaling_n, reps);

    let content = BenchTrain {
        pool_threads: rayon::max_threads(),
        legacy_threads: vc_bench::legacy::legacy_threads(),
        kernels,
        e2e,
        scaling_n,
        scaling,
    };

    for row in &content.kernels {
        assert!(
            row.legacy_gflops.is_finite() && row.blocked_gflops > 0.0,
            "degenerate kernel measurement: {} n={}",
            row.op,
            row.n
        );
    }
    assert!(content.e2e.ws_steps_per_s > 0.0);

    if smoke {
        println!(
            "smoke OK: {} kernel rows, e2e + scaling sane",
            content.kernels.len()
        );
        return;
    }
    vc_bench::write_results(
        "BENCH_train.json",
        &serde_json::to_string_pretty(&content).expect("serialize"),
    );
}
