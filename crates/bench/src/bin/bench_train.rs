//! Training-throughput benchmark: before/after numbers for the compute
//! substrate (blocked kernels + persistent pool + zero-alloc workspace +
//! direct 3×3 conv).
//!
//! Four sections, all written to `results/BENCH_train.json`:
//!
//! 1. **Kernels** — GFLOP/s of the three matmul shapes at 128³/256³/512³,
//!    the frozen pre-optimization kernels ([`vc_bench::legacy`]) against the
//!    current blocked micro-kernels.
//! 2. **End-to-end** — optimizer steps/sec training the paper's `small_cnn`
//!    on `[1, 28, 28]` inputs, the legacy layer path against
//!    [`vc_optim::train_minibatch_ws`].
//! 3. **Scaling** — blocked-matmul GFLOP/s *and* `small_cnn` ws steps/s as
//!    the persistent pool's thread cap sweeps {1, 2, 4, 8}, plus a scaling
//!    efficiency for each curve. The pool is forced to 8 workers (via
//!    `VC_THREADS`, unless the caller already set it) so the full curve
//!    exists even on a single-core host — there the curve measures dispatch
//!    overhead, not speedup, which is exactly what the `--check` floor
//!    guards (see below).
//! 4. **Conv** — per-layer forward+backward wall time of the direct 3×3
//!    kernels vs the im2col+GEMM lowering on the `small_cnn` conv shapes.
//!
//! `--smoke` runs the whole thing on tiny shapes in well under a second,
//! asserts the results are finite/sane, and writes nothing — the CI guard.
//!
//! `--check` additionally gates on performance, not just sanity:
//!
//! * **Scaling floor** — at the widest cap the GEMM curve must retain at
//!   least `GEMM_EFF_FLOOR` of ideal. Efficiency is normalized by the
//!   *achievable* parallelism `min(cap, host cores)`, so on a 1-core host
//!   the widest point degenerates to `perf(8 threads)/perf(1 thread)` — a
//!   pure dispatch-overhead bound. The floors are set from measurement on
//!   the 1-core reference container (see DESIGN.md §13): oversubscribed
//!   8-worker dispatch sustains ≥ 0.9× serial throughput for the GEMM and
//!   ≥ 0.8× for the full training step, so the floors sit a noise margin
//!   below at 0.70 (GEMM) / 0.60 (e2e, full mode only).
//! * **Conv floor** — the direct path must beat im2col on every full-run
//!   conv shape (`speedup ≥ 1.0`); the smoke shapes are too small to clear
//!   kernel-launch noise, so they only gate at ≥ 0.7.

use serde::Serialize;
use std::time::Instant;
use vc_bench::legacy::{legacy_matmul, legacy_matmul_a_bt, legacy_matmul_at_b, LegacySmallCnn};
use vc_nn::spec::small_cnn;
use vc_nn::{Conv2d, Layer};
use vc_optim::{train_minibatch_ws, OptimizerSpec, TrainWorkspace};
use vc_tensor::ops::{matmul, matmul_a_bt, matmul_at_b};
use vc_tensor::{conv_direct, NormalSampler, Tensor, Workspace};

/// Widest-cap GEMM scaling-efficiency floor enforced by `--check`.
const GEMM_EFF_FLOOR: f64 = 0.70;
/// Widest-cap e2e scaling-efficiency floor (full runs only).
const E2E_EFF_FLOOR: f64 = 0.60;
/// Direct-conv speedup floors: full shapes must win outright.
const CONV_SPEEDUP_FLOOR_FULL: f64 = 1.0;
const CONV_SPEEDUP_FLOOR_SMOKE: f64 = 0.7;

/// Minimum wall-clock time over `reps` runs of `f` (after one warmup call).
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup (first-touch, pool spawn, page faults)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct KernelRow {
    /// Which matmul variant (`matmul` = A·B, `at_b` = Aᵀ·B, `a_bt` = A·Bᵀ).
    op: String,
    /// Square problem size (m = n = k).
    n: usize,
    /// Pre-PR kernel throughput, GFLOP/s.
    legacy_gflops: f64,
    /// Blocked micro-kernel throughput, GFLOP/s.
    blocked_gflops: f64,
    /// blocked / legacy.
    speedup: f64,
}

#[derive(Serialize)]
struct E2e {
    /// Model + data shape the steps ran on.
    model: String,
    batch_size: usize,
    timed_steps: usize,
    /// Legacy layer path (clone churn, fresh allocations, old kernels).
    legacy_steps_per_s: f64,
    /// Workspace path ([`train_minibatch_ws`] with fused ReLU epilogues).
    ws_steps_per_s: f64,
    /// ws / legacy.
    speedup: f64,
}

#[derive(Serialize)]
struct Scaling {
    /// Square matrix size the GEMM points used.
    gemm_n: usize,
    /// Cores the host actually has; the pool itself may be wider (the
    /// `VC_THREADS=8` override), in which case caps past this point
    /// measure oversubscribed dispatch overhead rather than speedup.
    hw_threads: usize,
    /// Thread caps swept, ascending.
    threads: Vec<usize>,
    /// Blocked `matmul` GFLOP/s per cap.
    gflops: Vec<f64>,
    /// `small_cnn` workspace-trainer optimizer steps/s per cap.
    steps_per_s: Vec<f64>,
    /// `(gflops.last / gflops[0]) / min(threads.last, hw_threads)`.
    gemm_scaling_efficiency: f64,
    /// Same normalization for the steps/s curve.
    e2e_scaling_efficiency: f64,
}

#[derive(Serialize)]
struct ConvRow {
    /// Human label, e.g. `conv1 1->16 28x28 b32`.
    case: String,
    batch: usize,
    in_ch: usize,
    out_ch: usize,
    h: usize,
    w: usize,
    /// One training fwd+bwd through `Conv2d`, im2col path, milliseconds.
    im2col_ms: f64,
    /// Same step through the direct 3×3 kernels, milliseconds.
    direct_ms: f64,
    /// im2col / direct.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchTrain {
    /// Persistent-pool worker count the blocked numbers used.
    pool_threads: usize,
    /// Spawn-per-call thread count the legacy numbers used.
    legacy_threads: usize,
    kernels: Vec<KernelRow>,
    e2e: E2e,
    scaling: Scaling,
    conv: Vec<ConvRow>,
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

fn bench_kernels(sizes: &[usize], reps: usize) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    let mut s = NormalSampler::seed_from(7);
    for &n in sizes {
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
        let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
        let pairs: [(&'static str, f64, f64); 3] = [
            (
                "matmul",
                time_best(reps, || drop(legacy_matmul(&a, &b))),
                time_best(reps, || drop(matmul(&a, &b))),
            ),
            (
                "at_b",
                time_best(reps, || drop(legacy_matmul_at_b(&a, &b))),
                time_best(reps, || drop(matmul_at_b(&a, &b))),
            ),
            (
                "a_bt",
                time_best(reps, || drop(legacy_matmul_a_bt(&a, &b))),
                time_best(reps, || drop(matmul_a_bt(&a, &b))),
            ),
        ];
        for (op, t_legacy, t_blocked) in pairs {
            let row = KernelRow {
                op: op.to_string(),
                n,
                legacy_gflops: gflops(n, t_legacy),
                blocked_gflops: gflops(n, t_blocked),
                speedup: t_legacy / t_blocked,
            };
            println!(
                "kernel {op:>6} n={n:<4} legacy {:8.2} GFLOP/s  blocked {:8.2} GFLOP/s  ({:.2}x)",
                row.legacy_gflops, row.blocked_gflops, row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

/// Steps/s of the workspace trainer on `small_cnn` for the given shape:
/// fresh model/optimizer, one warm-up epoch (fills the pools), then
/// `timed_epochs` timed. Used for both the e2e section and the per-cap
/// scaling curve.
fn ws_steps_per_s(input: [usize; 3], samples: usize, batch: usize, timed_epochs: usize) -> f64 {
    use rand::SeedableRng;
    let classes = 10;
    let mut s = NormalSampler::seed_from(11);
    let dims = [samples, input[0], input[1], input[2]];
    let images = Tensor::randn(&dims, 0.0, 1.0, &mut s);
    let labels: Vec<usize> = (0..samples).map(|i| i % classes).collect();
    let timed_steps = timed_epochs * samples.div_ceil(batch);
    let mut model = small_cnn(&input, classes).build(42);
    let mut opt = OptimizerSpec::Sgd { lr: 0.01 }.build(model.params_flat().len());
    let mut tws = TrainWorkspace::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let stats = train_minibatch_ws(
        &mut model, &mut opt, &images, &labels, batch, 1, 5.0, &mut rng, &mut tws, None,
    );
    assert!(stats.mean_loss.is_finite(), "ws path diverged");
    let t0 = Instant::now();
    train_minibatch_ws(
        &mut model,
        &mut opt,
        &images,
        &labels,
        batch,
        timed_epochs,
        5.0,
        &mut rng,
        &mut tws,
        None,
    );
    timed_steps as f64 / t0.elapsed().as_secs_f64()
}

fn bench_e2e(input: [usize; 3], samples: usize, batch: usize, timed_epochs: usize) -> E2e {
    let classes = 10;
    let lr = 0.01f32;
    let mut s = NormalSampler::seed_from(11);
    let dims = [samples, input[0], input[1], input[2]];
    let images = Tensor::randn(&dims, 0.0, 1.0, &mut s);
    let labels: Vec<usize> = (0..samples).map(|i| i % classes).collect();
    let sample_len = input.iter().product::<usize>();
    let steps_per_epoch = samples.div_ceil(batch);
    let timed_steps = timed_epochs * steps_per_epoch;

    // Legacy path: in-order batches, fresh batch tensor per step, exactly
    // the allocation profile of the seed trainer.
    let mut net = LegacySmallCnn::new(input, classes, 42);
    let run_legacy_epoch = |net: &mut LegacySmallCnn| {
        for (step, chunk) in labels.chunks(batch).enumerate() {
            let start = step * batch * sample_len;
            let xb = Tensor::from_vec(
                images.data()[start..start + chunk.len() * sample_len].to_vec(),
                &[chunk.len(), input[0], input[1], input[2]],
            );
            let loss = net.train_step(&xb, chunk, lr);
            assert!(loss.is_finite(), "legacy path diverged");
        }
    };
    run_legacy_epoch(&mut net); // warmup
    let t0 = Instant::now();
    for _ in 0..timed_epochs {
        run_legacy_epoch(&mut net);
    }
    let legacy_steps_per_s = timed_steps as f64 / t0.elapsed().as_secs_f64();

    // Workspace path: the real production trainer, same SGD step rule.
    let ws = ws_steps_per_s(input, samples, batch, timed_epochs);

    let e2e = E2e {
        model: format!("small_cnn {:?} classes={classes}", input),
        batch_size: batch,
        timed_steps,
        legacy_steps_per_s,
        ws_steps_per_s: ws,
        speedup: ws / legacy_steps_per_s,
    };
    println!(
        "e2e {} batch={batch}: legacy {legacy_steps_per_s:8.2} steps/s  ws {:8.2} steps/s  ({:.2}x)",
        e2e.model, e2e.ws_steps_per_s, e2e.speedup
    );
    e2e
}

/// The caps to sweep: {1, 2, 4, 8} clamped to the pool width, plus the
/// pool width itself when it is not a power of two.
fn sweep_caps(max: usize) -> Vec<usize> {
    let mut caps: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= max)
        .collect();
    if caps.last() != Some(&max) {
        caps.push(max);
    }
    caps
}

fn bench_scaling(
    n: usize,
    reps: usize,
    input: [usize; 3],
    samples: usize,
    batch: usize,
) -> Scaling {
    let mut s = NormalSampler::seed_from(13);
    let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
    let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
    let max = rayon::max_threads();
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let caps = sweep_caps(max);
    let (mut gf, mut sps) = (Vec::new(), Vec::new());
    for &t in &caps {
        rayon::set_thread_cap(t);
        let secs = time_best(reps, || drop(matmul(&a, &b)));
        let g = gflops(n, secs);
        let e = ws_steps_per_s(input, samples, batch, 1);
        println!("scaling threads={t}: gemm(n={n}) {g:.2} GFLOP/s  small_cnn {e:.2} steps/s");
        gf.push(g);
        sps.push(e);
    }
    rayon::set_thread_cap(max);
    let ideal = (*caps.last().expect("non-empty sweep")).min(hw) as f64;
    Scaling {
        gemm_n: n,
        hw_threads: hw,
        gemm_scaling_efficiency: gf.last().expect("point") / gf[0] / ideal,
        e2e_scaling_efficiency: sps.last().expect("point") / sps[0] / ideal,
        threads: caps,
        gflops: gf,
        steps_per_s: sps,
    }
}

/// One training step (forward + backward) through `Conv2d` with the given
/// path forced, using the workspace entry points the production trainer
/// takes. Buffers come from `ws` so the timed loop is allocation-free
/// after `time_best`'s warmup call.
fn conv_step_secs(
    layer: &mut Conv2d,
    x: &Tensor,
    dy: &Tensor,
    ws: &mut Workspace,
    reps: usize,
    direct: bool,
) -> f64 {
    conv_direct::set_enabled(direct);
    let xd = x.dims().to_vec();
    let dyd = dy.dims().to_vec();
    let secs = time_best(reps, || {
        let mut xb = ws.take(x.data().len());
        xb.copy_from_slice(x.data());
        let y = layer.forward_ws(Tensor::from_vec(xb, &xd), true, ws);
        ws.recycle(y.into_vec());
        let mut dyb = ws.take(dy.data().len());
        dyb.copy_from_slice(dy.data());
        let dx = layer.backward_ws(Tensor::from_vec(dyb, &dyd), ws);
        ws.recycle(dx.into_vec());
    });
    conv_direct::clear_forced();
    secs
}

fn bench_conv(cases: &[(usize, usize, usize, usize, usize)], reps: usize) -> Vec<ConvRow> {
    let mut rows = Vec::new();
    let mut s = NormalSampler::seed_from(17);
    for (i, &(batch, in_ch, out_ch, h, w)) in cases.iter().enumerate() {
        let mut layer = Conv2d::new(in_ch, out_ch, 3, 1, 1, &mut s);
        let x = Tensor::randn(&[batch, in_ch, h, w], 0.0, 1.0, &mut s);
        let dy = Tensor::randn(&[batch, out_ch, h, w], 0.0, 1.0, &mut s);
        let mut ws = Workspace::new();
        let t_lowered = conv_step_secs(&mut layer, &x, &dy, &mut ws, reps, false);
        let t_direct = conv_step_secs(&mut layer, &x, &dy, &mut ws, reps, true);
        let row = ConvRow {
            case: format!("conv{} {in_ch}->{out_ch} {h}x{w} b{batch}", i + 1),
            batch,
            in_ch,
            out_ch,
            h,
            w,
            im2col_ms: t_lowered * 1e3,
            direct_ms: t_direct * 1e3,
            speedup: t_lowered / t_direct,
        };
        println!(
            "conv {:<22} im2col {:8.3} ms  direct {:8.3} ms  ({:.2}x)",
            row.case, row.im2col_ms, row.direct_ms, row.speedup
        );
        rows.push(row);
    }
    rows
}

fn main() {
    // Before the pool exists: a 1-core CI box would otherwise produce a
    // single-point scaling curve. An explicit VC_THREADS wins.
    if std::env::var("VC_THREADS").is_err() {
        std::env::set_var("VC_THREADS", "8");
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check");
    #[allow(clippy::type_complexity)]
    let (sizes, reps, input, samples, batch, epochs, scaling_n, conv_cases): (
        Vec<usize>,
        usize,
        [usize; 3],
        usize,
        usize,
        usize,
        usize,
        Vec<(usize, usize, usize, usize, usize)>,
    ) = if smoke {
        (
            vec![32, 64],
            2,
            [1, 8, 8],
            32,
            8,
            1,
            128,
            vec![(4, 2, 8, 12, 12), (2, 4, 8, 8, 8)],
        )
    } else {
        (
            vec![128, 256, 512],
            3,
            [1, 28, 28],
            256,
            32,
            2,
            256,
            // The small_cnn conv shapes at [1, 28, 28] plus a wider
            // ResNet-ish block.
            vec![
                (32, 1, 16, 28, 28),
                (32, 16, 32, 14, 14),
                (32, 32, 32, 8, 8),
            ],
        )
    };

    let kernels = bench_kernels(&sizes, reps);
    let e2e = bench_e2e(input, samples, batch, epochs);
    let scaling = bench_scaling(scaling_n, reps, input, samples, batch);
    let conv = bench_conv(&conv_cases, reps.max(3));

    let content = BenchTrain {
        pool_threads: rayon::max_threads(),
        legacy_threads: vc_bench::legacy::legacy_threads(),
        kernels,
        e2e,
        scaling,
        conv,
    };

    for row in &content.kernels {
        assert!(
            row.legacy_gflops.is_finite() && row.blocked_gflops > 0.0,
            "degenerate kernel measurement: {} n={}",
            row.op,
            row.n
        );
    }
    assert!(content.e2e.ws_steps_per_s > 0.0);
    assert!(
        content.scaling.threads.len() >= 2,
        "scaling curve needs at least two caps (pool came up {}-wide)",
        content.scaling.threads.len()
    );
    assert!(content.scaling.gemm_scaling_efficiency.is_finite());
    assert!(content.scaling.e2e_scaling_efficiency.is_finite());

    if check {
        assert!(
            content.scaling.gemm_scaling_efficiency >= GEMM_EFF_FLOOR,
            "GEMM scaling efficiency {:.3} below floor {GEMM_EFF_FLOOR} \
             (threads {:?}, gflops {:?})",
            content.scaling.gemm_scaling_efficiency,
            content.scaling.threads,
            content.scaling.gflops,
        );
        if !smoke {
            assert!(
                content.scaling.e2e_scaling_efficiency >= E2E_EFF_FLOOR,
                "e2e scaling efficiency {:.3} below floor {E2E_EFF_FLOOR} \
                 (threads {:?}, steps/s {:?})",
                content.scaling.e2e_scaling_efficiency,
                content.scaling.threads,
                content.scaling.steps_per_s,
            );
        }
        let floor = if smoke {
            CONV_SPEEDUP_FLOOR_SMOKE
        } else {
            CONV_SPEEDUP_FLOOR_FULL
        };
        for row in &content.conv {
            assert!(
                row.speedup >= floor,
                "direct conv {} speedup {:.2} below floor {floor}",
                row.case,
                row.speedup
            );
        }
        println!("check OK: scaling + conv floors hold");
    }

    if smoke {
        println!(
            "smoke OK: {} kernel rows, e2e + scaling + conv sane",
            content.kernels.len()
        );
        return;
    }
    vc_bench::write_results(
        "BENCH_train.json",
        &serde_json::to_string_pretty(&content).expect("serialize"),
    );
}
