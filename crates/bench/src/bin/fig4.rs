//! Figure 4 — effect of the VC-ASGD hyperparameter α on validation
//! accuracy (mean and min–max spread) for the P3C3T4 setup: α ∈ {0.7,
//! 0.95, 0.999, Var} where Var is `α_e = e/(e+1)`.
//!
//! Expected shape (paper): α = 0.7 climbs fastest in early epochs but is
//! overtaken later; α = 0.95 wins mid-run; α = 0.999 (the EASGD analog)
//! barely trains at all; Var is fastest overall with the smallest spread.
//! Smaller α ⇒ larger accuracy spread across subtasks.
//!
//! Run: `cargo run -p vc-bench --bin fig4 --release`
//! (set `REPRO_FAST=1` or `REPRO_EPOCHS=n` to shrink the run)

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};
use vc_bench::{print_run, repro_epochs, runs_to_csv, write_results};

fn main() {
    let epochs = repro_epochs();
    let schedules = [
        AlphaSchedule::Const(0.7),
        AlphaSchedule::Const(0.95),
        AlphaSchedule::Const(0.999),
        AlphaSchedule::VarEOverE1,
    ];
    let mut runs = Vec::new();
    for sched in schedules {
        let mut cfg = JobConfig::paper_default(42).with_pct(3, 3, 4);
        cfg.alpha = sched;
        cfg.epochs = epochs;
        let label = sched.label();
        eprintln!("# running P3C3T4 {label} ({epochs} epochs)...");
        let report = run_job(cfg).expect("valid config");
        print_run(&label, &report);
        runs.push((label, report));
    }

    println!("Figure 4 summary (P3C3T4, {epochs} epochs):");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "schedule", "final acc", "spread", "hours"
    );
    for (label, r) in &runs {
        let spread = r
            .epochs
            .last()
            .map(|e| e.max_val_acc - e.min_val_acc)
            .unwrap_or(0.0);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>12.2}",
            label,
            r.final_mean_acc(),
            spread,
            r.total_time_h
        );
    }
    write_results("fig4.csv", &runs_to_csv(&runs));
}
