//! Ablations of the design choices DESIGN.md §6 calls out, all on the
//! timing-only fast path (40-epoch P3C3T4 unless noted):
//!
//! * sticky-file caching on vs off — bytes moved over the network;
//! * timeout `t_o` sensitivity under a preemption storm — too-short
//!   timeouts cause reassignment churn, too-long ones park work on dead
//!   instances;
//! * consistency mode × parameter-server count — the latency/lost-update
//!   trade-off as Pn scales;
//! * heterogeneous vs uniform fleet — what Table I's mixed instance types
//!   cost in wall-clock;
//! * workunit replication under preemption — redundancy as a hedge;
//! * asynchronous assimilation vs a serialized single parameter server.
//!
//! Run: `cargo run -p vc-bench --bin ablations --release`

use vc_asgd::job::run_job;
use vc_asgd::{FleetKind, JobConfig};
use vc_kvstore::Consistency;
use vc_simnet::PreemptionModel;

fn base() -> JobConfig {
    let mut cfg = JobConfig::paper_default(42).with_pct(3, 3, 4);
    cfg.epochs = 40;
    cfg.timing_only = true;
    cfg
}

fn main() {
    // --- Sticky files ---------------------------------------------------
    println!("Ablation 1: sticky-file caching (bytes over the network)");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "sticky", "GB moved", "cache hits", "hours"
    );
    for sticky in [true, false] {
        let mut cfg = base();
        cfg.middleware.sticky_files = sticky;
        let r = run_job(cfg).unwrap();
        println!(
            "{:<10} {:>12.2} {:>12} {:>10.2}",
            sticky,
            r.bytes_transferred as f64 / 1e9,
            r.server_metrics.cache_hits,
            r.total_time_h
        );
    }

    // --- Timeout sensitivity --------------------------------------------
    println!("\nAblation 2: timeout t_o under a 10% preemption storm");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "t_o (min)", "hours", "timeouts", "reassigned", "stale"
    );
    for to_min in [1.5, 5.0, 15.0, 45.0] {
        let mut cfg = base();
        cfg.preemption = PreemptionModel::BernoulliPerSubtask { p: 0.10 };
        cfg.middleware.timeout_s = to_min * 60.0;
        let r = run_job(cfg).unwrap();
        println!(
            "{:<12} {:>10.2} {:>10} {:>12} {:>10}",
            to_min,
            r.total_time_h,
            r.server_metrics.timeouts,
            r.server_metrics.reassignments,
            r.server_metrics.stale_results
        );
    }

    // --- Consistency × Pn -------------------------------------------------
    println!("\nAblation 3: consistency mode as parameter servers scale");
    println!(
        "{:<10} {:>4} {:>10} {:>14}",
        "mode", "Pn", "hours", "lost updates"
    );
    for pn in [1usize, 3, 5, 8] {
        for mode in [Consistency::Eventual, Consistency::Strong] {
            let mut cfg = base().with_pct(pn, 3, 4);
            cfg.consistency = mode;
            let r = run_job(cfg).unwrap();
            println!(
                "{:<10} {:>4} {:>10.2} {:>14}",
                mode.to_string(),
                pn,
                r.total_time_h,
                r.store_ops.lost_updates
            );
        }
    }

    // --- Fleet heterogeneity ---------------------------------------------
    println!("\nAblation 4: uniform vs mixed (Table I) fleet, P5C5T2");
    println!("{:<10} {:>10} {:>10}", "fleet", "hours", "timeouts");
    for (name, fleet) in [("uniform", FleetKind::Uniform), ("mixed", FleetKind::Mixed)] {
        let mut cfg = base().with_pct(5, 5, 2);
        cfg.fleet = fleet;
        let r = run_job(cfg).unwrap();
        println!(
            "{:<10} {:>10.2} {:>10}",
            name, r.total_time_h, r.server_metrics.timeouts
        );
    }

    // --- Replication under preemption --------------------------------------
    println!("\nAblation 5: workunit replication under a 20% preemption storm (P3C4T2)");
    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "replication", "hours", "timeouts", "assignments"
    );
    for replication in [1u32, 2, 3] {
        let mut cfg = base().with_pct(3, 4, 2);
        cfg.preemption = PreemptionModel::BernoulliPerSubtask { p: 0.20 };
        cfg.middleware.replication = replication;
        let r = run_job(cfg).unwrap();
        println!(
            "{:<12} {:>10.2} {:>10} {:>12}",
            replication, r.total_time_h, r.server_metrics.timeouts, r.server_metrics.assigned
        );
    }

    // --- Assimilate-on-arrival vs epoch barrier ---------------------------
    // The barrier variant is approximated by strong consistency with a
    // single parameter server *plus* the epoch-synchronous work generator
    // both designs share; the arrival-order asynchrony is VC-ASGD's delta.
    println!("\nAblation 6: asynchronous assimilation vs serialized (P1, strong)");
    for (name, pn, mode) in [
        ("async-eventual", 5usize, Consistency::Eventual),
        ("serialized", 1, Consistency::Strong),
    ] {
        let mut cfg = base().with_pct(pn, 5, 4);
        cfg.consistency = mode;
        let r = run_job(cfg).unwrap();
        println!("  {name:<16} {:.2} h", r.total_time_h);
    }
}
