//! Figure 6 — validation (left) and test (right) accuracy: distributed
//! P5C5T2 with the Var α schedule vs single-instance serial synchronous
//! training on the server-class instance.
//!
//! Expected shape (paper): the serial curve is higher at any matched time
//! (0.82 vs 0.73 at the 8.4 h mark), the gap narrows as training
//! continues, the distributed curve is smoother, and test accuracy tracks
//! validation accuracy for both.
//!
//! Run: `cargo run -p vc-bench --bin fig6 --release`

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};
use vc_baselines::serial::{run_serial, SerialConfig};
use vc_bench::{repro_epochs, write_results};

fn main() {
    let epochs = repro_epochs();

    let mut cfg = JobConfig::paper_default(42).with_pct(5, 5, 2);
    cfg.alpha = AlphaSchedule::VarEOverE1;
    cfg.epochs = epochs;
    cfg.track_test_acc = true;
    eprintln!("# running distributed P5C5T2 Var ({epochs} epochs)...");
    let dist = run_job(cfg).expect("valid config");

    // Size the serial run to cover the same simulated horizon.
    let mut scfg = SerialConfig::paper_default(42);
    let serial_epoch_h = scfg.epoch_duration_s(50) / 3600.0;
    scfg.epochs = ((dist.total_time_h / serial_epoch_h).ceil() as usize).max(2);
    eprintln!("# running serial baseline ({} epochs)...", scfg.epochs);
    let serial = run_serial(&scfg);

    println!("Figure 6: distributed (P5C5T2, Var) vs single-instance serial");
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "curve", "hours", "val acc", "test acc"
    );
    for e in &dist.epochs {
        println!(
            "{:<12} {:>8.2} {:>10.3} {:>10}",
            "distributed",
            e.end_time_h,
            e.mean_val_acc,
            e.test_acc.map(|t| format!("{t:.3}")).unwrap_or_default()
        );
    }
    for e in &serial.epochs {
        println!(
            "{:<12} {:>8.2} {:>10.3} {:>10.3}",
            "serial", e.end_time_h, e.val_acc, e.test_acc
        );
    }

    // Matched-time comparison at the distributed horizon (the paper's
    // "at the end of 8.4 hours" observation).
    let t = dist.total_time_h;
    let serial_at = serial.val_acc_at_hours(t).unwrap_or(0.0);
    let dist_final = dist.final_mean_acc();
    println!(
        "\nAt {t:.1} h: serial {serial_at:.3} vs distributed {dist_final:.3} (paper: 0.82 vs 0.73)"
    );

    // Smoothness: mean absolute epoch-to-epoch change of validation
    // accuracy (the paper's third observation — distributed is smoother).
    let rough = |vals: &[f32]| -> f32 {
        if vals.len() < 2 {
            return 0.0;
        }
        vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>() / (vals.len() - 1) as f32
    };
    let d_vals: Vec<f32> = dist.epochs.iter().map(|e| e.mean_val_acc).collect();
    let s_vals: Vec<f32> = serial.epochs.iter().map(|e| e.val_acc).collect();
    println!(
        "Curve roughness (mean |Δacc| per epoch): distributed {:.4}, serial {:.4}",
        rough(&d_vals),
        rough(&s_vals)
    );

    let mut csv = String::from("curve,epoch,hours,val_acc,test_acc\n");
    for e in &dist.epochs {
        csv.push_str(&format!(
            "distributed,{},{:.4},{:.4},{}\n",
            e.epoch,
            e.end_time_h,
            e.mean_val_acc,
            e.test_acc.map(|t| format!("{t:.4}")).unwrap_or_default()
        ));
    }
    for e in &serial.epochs {
        csv.push_str(&format!(
            "serial,{},{:.4},{:.4},{:.4}\n",
            e.epoch, e.end_time_h, e.val_acc, e.test_acc
        ));
    }
    write_results("fig6.csv", &csv);
}
