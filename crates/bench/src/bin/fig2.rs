//! Figure 2 — effect of distributed training at fixed α = 0.95: validation
//! accuracy vs cumulative training time for P1C3T2, P1C3T8, P3C3T8 and
//! P5C5T2.
//!
//! Expected shape (paper): all four configurations converge to roughly the
//! same accuracy plateau; the better-provisioned ones (more parameter
//! servers / more simultaneous subtasks, up to the balance point) get there
//! in less simulated time.
//!
//! Run: `cargo run -p vc-bench --bin fig2 --release`
//! (set `REPRO_FAST=1` or `REPRO_EPOCHS=n` to shrink the run)

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};
use vc_bench::{print_run, repro_epochs, runs_to_csv, write_results};

fn main() {
    let epochs = repro_epochs();
    let configs = [(1, 3, 2), (1, 3, 8), (3, 3, 8), (5, 5, 2)];
    let mut runs = Vec::new();
    for (pn, cn, tn) in configs {
        let mut cfg = JobConfig::paper_default(42).with_pct(pn, cn, tn);
        cfg.alpha = AlphaSchedule::Const(0.95);
        cfg.epochs = epochs;
        let label = cfg.pct_label();
        eprintln!("# running {label} ({epochs} epochs)...");
        let report = run_job(cfg).expect("valid config");
        print_run(&label, &report);
        runs.push((label, report));
    }

    println!("Figure 2 summary (alpha = 0.95, {epochs} epochs):");
    println!("{:<10} {:>10} {:>11}", "config", "final acc", "total hours");
    for (label, r) in &runs {
        println!(
            "{:<10} {:>10.3} {:>11.2}",
            label,
            r.final_mean_acc(),
            r.total_time_h
        );
    }
    write_results("fig2.csv", &runs_to_csv(&runs));
}
