//! Parameter-service benchmark: what sharding buys on the wire and in the
//! merge path.
//!
//! Three sections, written to `results/BENCH_ps.json`:
//!
//! 1. **Fetch** — snapshot-fetch throughput (cold: every shard crosses the
//!    wire; warm: the sticky cache answers) for shard counts {1, 4, 16} on
//!    both transports, in-memory and TCP loopback. Same codec, same
//!    frames; TCP adds real sockets.
//! 2. **Push** — single-shard push+merge round-trips per second.
//! 3. **Assimilation** — per-operation latency of `assimilate_strong`
//!    under 4 concurrent mergers. With one shard every merge serializes on
//!    one key; with more shards the mergers pipeline through the per-shard
//!    transactions, which is exactly the contention the paper's
//!    single-value store suffers (§V). The headline number is p95 at 4
//!    shards vs 1.
//! 4. **Codec** — wire bytes per fetch+push round for each transfer codec
//!    (`raw`, `fp16`, `int8+ef`, `topk+ef`) at shard counts {1, 4, 16},
//!    plus per-shard encode/decode kernel time. Rounds use a blocky-sparse
//!    update profile (~25% of 64-weight blocks move per round) — the shape
//!    real gradient updates have between publishes, and what the int8
//!    zero-run coding is built for.
//!
//! `--smoke` runs tiny sizes, asserts sanity, writes nothing (CI guard).
//! `--check` additionally asserts `p95(4 shards) < p95(1 shard)` and that
//! `int8+ef` moves at most ¼ the bytes `raw` does per round.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use vc_asgd::AlphaSchedule;
use vc_kvstore::{Consistency, VersionedStore};
use vc_ps::{
    Codec, MemClient, PsClient, PsService, ShardCache, ShardedAssimilator, TcpClient, TcpPsServer,
};

#[derive(Serialize)]
struct FetchRow {
    transport: String,
    shards: usize,
    /// Parameter vector bytes (f32 payload, pre-framing).
    payload_bytes: usize,
    /// Cold sync (empty cache → all shards travel), MB/s of payload.
    cold_mb_s: f64,
    /// Warm sync (cache current → version check only), syncs/s.
    warm_syncs_per_s: f64,
    /// Push+merge round-trips per second (one shard per push).
    pushes_per_s: f64,
}

#[derive(Serialize)]
struct AssimRow {
    shards: usize,
    threads: usize,
    ops: usize,
    /// Per-op `assimilate_strong` latency percentiles, seconds.
    p50_s: f64,
    p95_s: f64,
    max_s: f64,
}

#[derive(Serialize)]
struct CodecRow {
    codec: String,
    shards: usize,
    /// Wire bytes one fetch+push round costs: every shard stale and
    /// delta-fetched, one push per shard (frame-encoded request +
    /// response bytes, from the service's own counters).
    bytes_per_round: u64,
    /// `raw`'s bytes_per_round over this codec's, same round shape.
    ratio_vs_raw: f64,
    /// Mean µs to encode / decode one shard-sized sparse update.
    encode_us: f64,
    decode_us: f64,
    /// Stale-manifest syncs per second inside the round loop (every
    /// shard moves each round, so these are real transfers, not cache
    /// hits).
    warm_fetches_per_s: f64,
    /// Single-shard pushes per second inside the round loop.
    pushes_per_s: f64,
}

#[derive(Serialize)]
struct BenchPs {
    param_count: usize,
    fetch: Vec<FetchRow>,
    assim: Vec<AssimRow>,
    codec: Vec<CodecRow>,
}

fn service(param_count: usize, shards: usize) -> Arc<PsService> {
    let store = Arc::new(VersionedStore::new());
    let assim = Arc::new(ShardedAssimilator::new(
        store,
        param_count,
        shards,
        Consistency::Strong,
        AlphaSchedule::Const(0.6),
    ));
    let params: Vec<f32> = (0..param_count).map(|i| (i % 97) as f32 * 0.01).collect();
    assim.seed_params(&params);
    let svc = Arc::new(PsService::new(assim.clone()));
    svc.publish_snapshot(1, &params, &assim.versions());
    svc
}

/// Like `service`, but with a transfer codec negotiated on both sides.
fn codec_service(param_count: usize, shards: usize, codec: Codec) -> Arc<PsService> {
    let store = Arc::new(VersionedStore::new());
    let assim = Arc::new(ShardedAssimilator::new(
        store,
        param_count,
        shards,
        Consistency::Strong,
        AlphaSchedule::Const(0.6),
    ));
    let params: Vec<f32> = (0..param_count).map(|i| (i % 97) as f32 * 0.01).collect();
    assim.seed_params(&params);
    let svc = Arc::new(
        PsService::new(assim.clone())
            .with_codec(codec)
            .with_supported(&[codec]),
    );
    svc.publish_snapshot(1, &params, &assim.versions());
    svc
}

/// Adds one round's blocky-sparse update in place: 1 in 4 of the
/// 64-weight blocks move (rotating with `round`), everything else stays
/// put. Blocks are indexed globally (`offset` is the slice's position in
/// the full vector) so the profile is the same whether applied per shard
/// or to the whole vector.
fn sparse_update(params: &mut [f32], offset: usize, round: usize) {
    for (i, p) in params.iter_mut().enumerate() {
        let g = offset + i;
        if !(g / 64 + round).is_multiple_of(4) {
            continue;
        }
        let sign = if g.is_multiple_of(2) { 1.0 } else { -1.0 };
        *p += sign * 0.01 * ((g % 13) as f32 + 1.0) / 13.0;
    }
}

/// One fetch+push round per iteration: every shard gets a sparse-update
/// push, the service publishes the merged state as a new epoch, and the
/// worker cache syncs — so every shard is stale and the transfer rides
/// whatever the codec ships (full blobs for raw, deltas otherwise).
/// Wire bytes come from the service's own rx/tx counters; round 0 warms
/// the codec's reference state and is excluded from the measurement.
fn measure_codec(
    name: &str,
    codec: Codec,
    param_count: usize,
    shards: usize,
    rounds: usize,
) -> CodecRow {
    let svc = codec_service(param_count, shards, codec);
    let layout = *svc.assimilator().layout();
    let mut client = MemClient::new(svc.clone());
    let mut cache = ShardCache::new(layout).with_codec(codec);
    cache
        .sync(1, &svc.assimilator().versions(), &mut client)
        .expect("cold sync");

    let mut epoch = 1u64;
    let mut ops0 = svc.ops();
    let mut push_s = 0.0f64;
    let mut sync_s = 0.0f64;
    for round in 0..rounds + 1 {
        if round == 1 {
            ops0 = svc.ops();
            push_s = 0.0;
            sync_s = 0.0;
        }
        for shard in 0..layout.shards() {
            let r = layout.range(shard);
            let mut values = cache.params()[r.clone()].to_vec();
            sparse_update(&mut values, r.start, round);
            let t0 = Instant::now();
            cache
                .push_update(&mut client, shard as u32, epoch, &values)
                .expect("round push");
            push_s += t0.elapsed().as_secs_f64();
        }
        let (full, manifest) = svc.assimilator().read_params();
        epoch += 1;
        svc.publish_snapshot(epoch, &full, &manifest);
        let t0 = Instant::now();
        cache
            .sync(epoch, &manifest, &mut client)
            .expect("round sync");
        sync_s += t0.elapsed().as_secs_f64();
    }
    let ops1 = svc.ops();
    let bytes = (ops1.bytes_rx - ops0.bytes_rx) + (ops1.bytes_tx - ops0.bytes_tx);

    // Kernel timing: one shard-sized sparse update through the codec,
    // encode and decode measured separately.
    let n = layout.len(0);
    let mut x = vec![0.0f32; n];
    sparse_update(&mut x, 0, 0);
    let mut blob = Vec::new();
    let mut y = Vec::new();
    let kernel_iters = 50;
    let t0 = Instant::now();
    for _ in 0..kernel_iters {
        codec.encode_update(&x, &mut blob);
    }
    let encode_us = t0.elapsed().as_secs_f64() / kernel_iters as f64 * 1e6;
    let t0 = Instant::now();
    for _ in 0..kernel_iters {
        codec
            .decode_update_into(&blob, n, &mut y)
            .expect("kernel decode");
    }
    let decode_us = t0.elapsed().as_secs_f64() / kernel_iters as f64 * 1e6;

    CodecRow {
        codec: name.to_string(),
        shards,
        bytes_per_round: bytes / rounds as u64,
        ratio_vs_raw: 1.0, // filled in by the caller once raw is known
        encode_us,
        decode_us,
        warm_fetches_per_s: rounds as f64 / sync_s,
        pushes_per_s: (rounds * layout.shards()) as f64 / push_s,
    }
}

/// Cold/warm fetch and push rates through `client` against `svc`.
fn measure_transport(
    name: &str,
    svc: &Arc<PsService>,
    client: &mut dyn PsClient,
    param_count: usize,
    shards: usize,
    iters: usize,
) -> FetchRow {
    let manifest: Vec<u64> = svc.assimilator().versions();
    let layout = *svc.assimilator().layout();

    // Cold: a fresh cache per iteration, every shard crosses the wire.
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut cache = ShardCache::new(layout);
        let p = cache.sync(1, &manifest, client).expect("cold sync");
        assert_eq!(p.len(), param_count);
    }
    let cold_s = t0.elapsed().as_secs_f64() / iters as f64;

    // Warm: one cache kept current — only the manifest comparison runs.
    let mut cache = ShardCache::new(layout);
    cache.sync(1, &manifest, client).expect("warm-up sync");
    let warm_iters = iters * 20;
    let t0 = Instant::now();
    for _ in 0..warm_iters {
        cache.sync(1, &manifest, client).expect("warm sync");
    }
    let warm_s = t0.elapsed().as_secs_f64() / warm_iters as f64;

    // Push: merge one (the largest) shard per round-trip.
    let shard_len = layout.len(0);
    let part = vec![0.25f32; shard_len];
    let t0 = Instant::now();
    for i in 0..iters {
        client.push(0, i as u64 + 2, &part).expect("push");
    }
    let push_s = t0.elapsed().as_secs_f64() / iters as f64;

    let payload_bytes = param_count * 4;
    FetchRow {
        transport: name.to_string(),
        shards,
        payload_bytes,
        cold_mb_s: payload_bytes as f64 / 1e6 / cold_s,
        warm_syncs_per_s: 1.0 / warm_s,
        pushes_per_s: 1.0 / push_s,
    }
}

/// `threads` concurrent workers each running `ops` strong assimilations of
/// the full vector; returns every per-op latency, pooled. A barrier holds
/// every thread at the line until all are warmed up, so the measured ops
/// genuinely contend — without it thread-spawn skew lets the mergers run
/// one after another and the single-shard case never queues.
fn assim_latencies(param_count: usize, shards: usize, threads: usize, ops: usize) -> Vec<f64> {
    let store = Arc::new(VersionedStore::new());
    let assim = Arc::new(ShardedAssimilator::new(
        store,
        param_count,
        shards,
        Consistency::Strong,
        AlphaSchedule::Const(0.6),
    ));
    assim.seed_params(&vec![0.0f32; param_count]);

    let start = Arc::new(std::sync::Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let assim = assim.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let client = vec![(t + 1) as f32 * 0.1; param_count];
                // Warm-up op outside the measurement.
                assim.assimilate_strong(&client, 1);
                start.wait();
                let mut lat = Vec::with_capacity(ops);
                for e in 0..ops {
                    let t0 = Instant::now();
                    assim.assimilate_strong(&client, e + 1);
                    lat.push(t0.elapsed().as_secs_f64());
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("assim thread"))
        .collect();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    all
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let (param_count, fetch_iters, assim_ops) = if smoke {
        (10_000, 5, 200)
    } else {
        (250_000, 40, 400)
    };
    let shard_counts = [1usize, 4, 16];
    let threads = 4;

    let mut fetch = Vec::new();
    for &shards in &shard_counts {
        let svc = service(param_count, shards);
        let mut mem = MemClient::new(svc.clone());
        fetch.push(measure_transport(
            "mem",
            &svc,
            &mut mem,
            param_count,
            shards,
            fetch_iters,
        ));

        let svc = service(param_count, shards);
        let server = TcpPsServer::bind(svc.clone(), shards.min(4)).expect("bind loopback");
        let mut tcp = TcpClient::connect(server.addrs(), server.groups()).expect("connect");
        fetch.push(measure_transport(
            "tcp",
            &svc,
            &mut tcp,
            param_count,
            shards,
            fetch_iters,
        ));
        drop(tcp);
        server.shutdown();
    }

    let mut assim = Vec::new();
    for &shards in &shard_counts {
        let lat = assim_latencies(param_count, shards, threads, assim_ops);
        assim.push(AssimRow {
            shards,
            threads,
            ops: lat.len(),
            p50_s: percentile(&lat, 0.50),
            p95_s: percentile(&lat, 0.95),
            max_s: *lat.last().unwrap(),
        });
    }

    let codec_rounds = if smoke { 3 } else { 8 };
    let mut codec_rows = Vec::new();
    for &shards in &shard_counts {
        // Top-k keeps ~6% of a shard — comfortably covers the moving
        // blocks' largest entries without shipping the noise floor.
        let k = (param_count.div_ceil(shards) / 16).max(4) as u32;
        let lossy: [(&str, Codec); 3] = [
            ("fp16", Codec::Fp16),
            (
                "int8+ef",
                Codec::Int8 {
                    error_feedback: true,
                },
            ),
            (
                "topk+ef",
                Codec::TopK {
                    k,
                    error_feedback: true,
                },
            ),
        ];
        let raw = measure_codec("raw", Codec::Raw, param_count, shards, codec_rounds);
        let raw_bytes = raw.bytes_per_round;
        codec_rows.push(raw);
        for (name, c) in lossy {
            let mut row = measure_codec(name, c, param_count, shards, codec_rounds);
            row.ratio_vs_raw = raw_bytes as f64 / row.bytes_per_round.max(1) as f64;
            codec_rows.push(row);
        }
    }

    for r in &fetch {
        assert!(
            r.cold_mb_s.is_finite() && r.cold_mb_s > 0.0,
            "bad fetch rate: {} x{}",
            r.transport,
            r.shards
        );
        assert!(r.warm_syncs_per_s > 0.0 && r.pushes_per_s > 0.0);
        println!(
            "fetch {:>3} shards={:>2}: cold {:>8.1} MB/s  warm {:>9.0}/s  push {:>8.0}/s",
            r.transport, r.shards, r.cold_mb_s, r.warm_syncs_per_s, r.pushes_per_s
        );
    }
    for a in &assim {
        assert!(a.p95_s.is_finite() && a.p95_s > 0.0);
        println!(
            "assim shards={:>2} ({} threads): p50 {:.2e}s  p95 {:.2e}s  max {:.2e}s",
            a.shards, a.threads, a.p50_s, a.p95_s, a.max_s
        );
    }
    for c in &codec_rows {
        assert!(
            c.bytes_per_round > 0 && c.encode_us.is_finite() && c.decode_us.is_finite(),
            "bad codec row: {} x{}",
            c.codec,
            c.shards
        );
        println!(
            "codec {:>8} shards={:>2}: {:>9} B/round ({:>5.1}x raw)  enc {:>7.1}µs  dec {:>7.1}µs  fetch {:>7.0}/s  push {:>7.0}/s",
            c.codec, c.shards, c.bytes_per_round, c.ratio_vs_raw, c.encode_us, c.decode_us,
            c.warm_fetches_per_s, c.pushes_per_s
        );
    }
    if check {
        let p95_1 = assim.iter().find(|a| a.shards == 1).unwrap().p95_s;
        let p95_4 = assim.iter().find(|a| a.shards == 4).unwrap().p95_s;
        assert!(
            p95_4 < p95_1,
            "sharded assimilation must cut tail latency: p95@4 {p95_4:.3e}s vs p95@1 {p95_1:.3e}s"
        );
        println!("check: p95@4 {p95_4:.3e}s < p95@1 {p95_1:.3e}s ✓");
        for &shards in &shard_counts {
            let int8 = codec_rows
                .iter()
                .find(|c| c.codec == "int8+ef" && c.shards == shards)
                .unwrap();
            assert!(
                int8.ratio_vs_raw >= 4.0,
                "int8+delta must move ≤¼ the bytes of raw at {} shards: {:.2}x",
                shards,
                int8.ratio_vs_raw
            );
            println!(
                "check: int8+ef @ {shards} shards {:.1}x fewer bytes than raw ✓",
                int8.ratio_vs_raw
            );
        }
    }

    if smoke {
        println!("smoke OK (nothing written)");
        return;
    }
    let out = BenchPs {
        param_count,
        fetch,
        assim,
        codec: codec_rows,
    };
    vc_bench::write_results(
        "BENCH_ps.json",
        &serde_json::to_string_pretty(&out).expect("serialize"),
    );
}
