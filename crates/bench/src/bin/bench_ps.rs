//! Parameter-service benchmark: what sharding buys on the wire and in the
//! merge path.
//!
//! Three sections, written to `results/BENCH_ps.json`:
//!
//! 1. **Fetch** — snapshot-fetch throughput (cold: every shard crosses the
//!    wire; warm: the sticky cache answers) for shard counts {1, 4, 16} on
//!    both transports, in-memory and TCP loopback. Same codec, same
//!    frames; TCP adds real sockets.
//! 2. **Push** — single-shard push+merge round-trips per second.
//! 3. **Assimilation** — per-operation latency of `assimilate_strong`
//!    under 4 concurrent mergers. With one shard every merge serializes on
//!    one key; with more shards the mergers pipeline through the per-shard
//!    transactions, which is exactly the contention the paper's
//!    single-value store suffers (§V). The headline number is p95 at 4
//!    shards vs 1.
//!
//! `--smoke` runs tiny sizes, asserts sanity, writes nothing (CI guard).
//! `--check` additionally asserts `p95(4 shards) < p95(1 shard)`.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use vc_asgd::AlphaSchedule;
use vc_kvstore::{Consistency, VersionedStore};
use vc_ps::{
    MemClient, PsClient, PsService, ShardCache, ShardedAssimilator, TcpClient, TcpPsServer,
};

#[derive(Serialize)]
struct FetchRow {
    transport: String,
    shards: usize,
    /// Parameter vector bytes (f32 payload, pre-framing).
    payload_bytes: usize,
    /// Cold sync (empty cache → all shards travel), MB/s of payload.
    cold_mb_s: f64,
    /// Warm sync (cache current → version check only), syncs/s.
    warm_syncs_per_s: f64,
    /// Push+merge round-trips per second (one shard per push).
    pushes_per_s: f64,
}

#[derive(Serialize)]
struct AssimRow {
    shards: usize,
    threads: usize,
    ops: usize,
    /// Per-op `assimilate_strong` latency percentiles, seconds.
    p50_s: f64,
    p95_s: f64,
    max_s: f64,
}

#[derive(Serialize)]
struct BenchPs {
    param_count: usize,
    fetch: Vec<FetchRow>,
    assim: Vec<AssimRow>,
}

fn service(param_count: usize, shards: usize) -> Arc<PsService> {
    let store = Arc::new(VersionedStore::new());
    let assim = Arc::new(ShardedAssimilator::new(
        store,
        param_count,
        shards,
        Consistency::Strong,
        AlphaSchedule::Const(0.6),
    ));
    let params: Vec<f32> = (0..param_count).map(|i| (i % 97) as f32 * 0.01).collect();
    assim.seed_params(&params);
    let svc = Arc::new(PsService::new(assim.clone()));
    svc.publish_snapshot(1, &params, &assim.versions());
    svc
}

/// Cold/warm fetch and push rates through `client` against `svc`.
fn measure_transport(
    name: &str,
    svc: &Arc<PsService>,
    client: &mut dyn PsClient,
    param_count: usize,
    shards: usize,
    iters: usize,
) -> FetchRow {
    let manifest: Vec<u64> = svc.assimilator().versions();
    let layout = *svc.assimilator().layout();

    // Cold: a fresh cache per iteration, every shard crosses the wire.
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut cache = ShardCache::new(layout);
        let p = cache.sync(1, &manifest, client).expect("cold sync");
        assert_eq!(p.len(), param_count);
    }
    let cold_s = t0.elapsed().as_secs_f64() / iters as f64;

    // Warm: one cache kept current — only the manifest comparison runs.
    let mut cache = ShardCache::new(layout);
    cache.sync(1, &manifest, client).expect("warm-up sync");
    let warm_iters = iters * 20;
    let t0 = Instant::now();
    for _ in 0..warm_iters {
        cache.sync(1, &manifest, client).expect("warm sync");
    }
    let warm_s = t0.elapsed().as_secs_f64() / warm_iters as f64;

    // Push: merge one (the largest) shard per round-trip.
    let shard_len = layout.len(0);
    let part = vec![0.25f32; shard_len];
    let t0 = Instant::now();
    for i in 0..iters {
        client.push(0, i as u64 + 2, &part).expect("push");
    }
    let push_s = t0.elapsed().as_secs_f64() / iters as f64;

    let payload_bytes = param_count * 4;
    FetchRow {
        transport: name.to_string(),
        shards,
        payload_bytes,
        cold_mb_s: payload_bytes as f64 / 1e6 / cold_s,
        warm_syncs_per_s: 1.0 / warm_s,
        pushes_per_s: 1.0 / push_s,
    }
}

/// `threads` concurrent workers each running `ops` strong assimilations of
/// the full vector; returns every per-op latency, pooled. A barrier holds
/// every thread at the line until all are warmed up, so the measured ops
/// genuinely contend — without it thread-spawn skew lets the mergers run
/// one after another and the single-shard case never queues.
fn assim_latencies(param_count: usize, shards: usize, threads: usize, ops: usize) -> Vec<f64> {
    let store = Arc::new(VersionedStore::new());
    let assim = Arc::new(ShardedAssimilator::new(
        store,
        param_count,
        shards,
        Consistency::Strong,
        AlphaSchedule::Const(0.6),
    ));
    assim.seed_params(&vec![0.0f32; param_count]);

    let start = Arc::new(std::sync::Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let assim = assim.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let client = vec![(t + 1) as f32 * 0.1; param_count];
                // Warm-up op outside the measurement.
                assim.assimilate_strong(&client, 1);
                start.wait();
                let mut lat = Vec::with_capacity(ops);
                for e in 0..ops {
                    let t0 = Instant::now();
                    assim.assimilate_strong(&client, e + 1);
                    lat.push(t0.elapsed().as_secs_f64());
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("assim thread"))
        .collect();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    all
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let (param_count, fetch_iters, assim_ops) = if smoke {
        (10_000, 5, 200)
    } else {
        (250_000, 40, 400)
    };
    let shard_counts = [1usize, 4, 16];
    let threads = 4;

    let mut fetch = Vec::new();
    for &shards in &shard_counts {
        let svc = service(param_count, shards);
        let mut mem = MemClient::new(svc.clone());
        fetch.push(measure_transport(
            "mem",
            &svc,
            &mut mem,
            param_count,
            shards,
            fetch_iters,
        ));

        let svc = service(param_count, shards);
        let server = TcpPsServer::bind(svc.clone(), shards.min(4)).expect("bind loopback");
        let mut tcp = TcpClient::connect(server.addrs(), server.groups()).expect("connect");
        fetch.push(measure_transport(
            "tcp",
            &svc,
            &mut tcp,
            param_count,
            shards,
            fetch_iters,
        ));
        drop(tcp);
        server.shutdown();
    }

    let mut assim = Vec::new();
    for &shards in &shard_counts {
        let lat = assim_latencies(param_count, shards, threads, assim_ops);
        assim.push(AssimRow {
            shards,
            threads,
            ops: lat.len(),
            p50_s: percentile(&lat, 0.50),
            p95_s: percentile(&lat, 0.95),
            max_s: *lat.last().unwrap(),
        });
    }

    for r in &fetch {
        assert!(
            r.cold_mb_s.is_finite() && r.cold_mb_s > 0.0,
            "bad fetch rate: {} x{}",
            r.transport,
            r.shards
        );
        assert!(r.warm_syncs_per_s > 0.0 && r.pushes_per_s > 0.0);
        println!(
            "fetch {:>3} shards={:>2}: cold {:>8.1} MB/s  warm {:>9.0}/s  push {:>8.0}/s",
            r.transport, r.shards, r.cold_mb_s, r.warm_syncs_per_s, r.pushes_per_s
        );
    }
    for a in &assim {
        assert!(a.p95_s.is_finite() && a.p95_s > 0.0);
        println!(
            "assim shards={:>2} ({} threads): p50 {:.2e}s  p95 {:.2e}s  max {:.2e}s",
            a.shards, a.threads, a.p50_s, a.p95_s, a.max_s
        );
    }
    if check {
        let p95_1 = assim.iter().find(|a| a.shards == 1).unwrap().p95_s;
        let p95_4 = assim.iter().find(|a| a.shards == 4).unwrap().p95_s;
        assert!(
            p95_4 < p95_1,
            "sharded assimilation must cut tail latency: p95@4 {p95_4:.3e}s vs p95@1 {p95_1:.3e}s"
        );
        println!("check: p95@4 {p95_4:.3e}s < p95@1 {p95_1:.3e}s ✓");
    }

    if smoke {
        println!("smoke OK (nothing written)");
        return;
    }
    let out = BenchPs {
        param_count,
        fetch,
        assim,
    };
    vc_bench::write_results(
        "BENCH_ps.json",
        &serde_json::to_string_pretty(&out).expect("serialize"),
    );
}
