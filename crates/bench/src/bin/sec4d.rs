//! §IV-D — impact of the eventual-consistency database.
//!
//! Reproduces three results:
//! 1. per-update latency: Redis-mode 0.87 s vs MySQL-mode 1.29 s (1.5×) at
//!    the paper's 21.2 MB blob, from the calibrated latency model, plus a
//!    real wall-clock micro-measurement of the in-memory store engine;
//! 2. the training-time overhead: +14 min over ~2 000 updates (CIFAR10,
//!    40 epochs), +187 h at ImageNet scale (~1.6 M updates);
//! 3. the semantic difference: a timing-only P3C3T4 run under each mode —
//!    strong consistency never loses updates but stretches the clock;
//!    eventual consistency is faster and loses a measurable number.
//!
//! Run: `cargo run -p vc-bench --bin sec4d --release`

use bytes::Bytes;
use std::time::Instant;
use vc_asgd::job::run_job;
use vc_asgd::JobConfig;
use vc_cost::DbOverhead;
use vc_kvstore::{Consistency, LatencyModel, VersionedStore};

fn main() {
    // 1. Per-update latency model at the paper's blob size.
    let blob = (21.2 * 1024.0 * 1024.0) as usize;
    let redis = LatencyModel::for_mode(Consistency::Eventual).update_s(blob);
    let mysql = LatencyModel::for_mode(Consistency::Strong).update_s(blob);
    println!("Per-update latency (21.2 MB parameter blob):");
    println!("  eventual (Redis analog): {redis:.2} s   (paper: 0.87 s)");
    println!("  strong   (MySQL analog): {mysql:.2} s   (paper: 1.29 s)");
    println!("  ratio: {:.2}x              (paper: 1.5x)", mysql / redis);

    // Real engine micro-measurement (both paths on this machine's store;
    // absolute numbers are hardware-dependent, the ordering is the point).
    let store = VersionedStore::new();
    let payload = Bytes::from(vec![0u8; 1 << 20]);
    store.put("w", payload.clone());
    let n = 2000;
    let t0 = Instant::now();
    for _ in 0..n {
        let (_, v) = store.get("w");
        store.put_versioned("w", v, payload.clone());
    }
    let eventual_us = t0.elapsed().as_micros() as f64 / n as f64;
    let t0 = Instant::now();
    for _ in 0..n {
        store.transact("w", |cur, _| (cur.clone(), ()));
    }
    let strong_us = t0.elapsed().as_micros() as f64 / n as f64;
    println!(
        "\nIn-memory engine (1 MiB value, this machine): eventual path {eventual_us:.1} us/op, \
         transactional path {strong_us:.1} us/op"
    );

    // 2. Overhead extrapolation.
    let d = DbOverhead::paper_measured();
    println!("\nStrong-consistency overhead:");
    println!(
        "  CIFAR10, 40 epochs (~{} updates): +{:.1} min   (paper: ~14 min)",
        DbOverhead::cifar10_updates(40),
        d.extra_s(DbOverhead::cifar10_updates(40)) / 60.0
    );
    println!(
        "  ImageNet, 40 epochs (~{} updates): +{:.0} h   (paper: ~187 h)",
        DbOverhead::imagenet_updates(40),
        d.extra_s(DbOverhead::imagenet_updates(40)) / 3600.0
    );

    // 3. End-to-end effect on a training run (timing-only, full 40 epochs).
    println!("\nEnd-to-end P3C3T4, 40 epochs (timing-only simulation):");
    println!(
        "{:<10} {:>12} {:>14} {:>13}",
        "mode", "total hours", "lost updates", "transactions"
    );
    for mode in [Consistency::Eventual, Consistency::Strong] {
        let mut cfg = JobConfig::paper_default(42).with_pct(3, 3, 4);
        cfg.epochs = 40;
        cfg.timing_only = true;
        cfg.consistency = mode;
        let r = run_job(cfg).expect("valid config");
        println!(
            "{:<10} {:>12.2} {:>14} {:>13}",
            mode.to_string(),
            r.total_time_h,
            r.store_ops.lost_updates,
            r.store_ops.transactions
        );
    }
}
