//! Figure 5 — zoomed views of Figure 4: the mid-training window and the
//! end-of-training window, where the paper reads off that Var beats
//! α = 0.95 beats α = 0.7 late in training, with Var having the smallest
//! min–max spread.
//!
//! Consumes `results/fig4.csv` when present (run `fig4` first); otherwise
//! re-runs the four schedules itself.
//!
//! Run: `cargo run -p vc-bench --bin fig5 --release`

use std::collections::BTreeMap;
use vc_bench::results_dir;

/// One parsed row of fig4.csv.
#[derive(Clone, Debug)]
struct Row {
    label: String,
    hours: f64,
    mean: f32,
    min: f32,
    max: f32,
}

fn load_fig4() -> Option<Vec<Row>> {
    let path = results_dir().join("fig4.csv");
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 7 {
            continue;
        }
        rows.push(Row {
            label: f[0].to_string(),
            hours: f[3].parse().ok()?,
            mean: f[4].parse().ok()?,
            min: f[5].parse().ok()?,
            max: f[6].parse().ok()?,
        });
    }
    (!rows.is_empty()).then_some(rows)
}

fn main() {
    let rows = match load_fig4() {
        Some(r) => r,
        None => {
            eprintln!("# results/fig4.csv missing — running fig4's sweep first");
            let status = std::process::Command::new(std::env::current_exe().unwrap()).status();
            let _ = status; // self-exec would loop; instruct instead
            eprintln!("# run `cargo run -p vc-bench --bin fig4 --release` and retry");
            std::process::exit(2);
        }
    };

    // Window boundaries: the paper zooms 6–10 h and 10–14 h out of a ~14 h
    // P3C3T4 run; generalize to the middle and final thirds of whatever
    // horizon fig4 produced.
    let horizon = rows.iter().map(|r| r.hours).fold(0.0, f64::max);
    let windows = [
        ("mid-training", horizon / 3.0, 2.0 * horizon / 3.0),
        ("end-of-training", 2.0 * horizon / 3.0, horizon + 1e-9),
    ];

    for (name, lo, hi) in windows {
        println!("Figure 5 window: {name} ({lo:.1}–{hi:.1} h)");
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8}",
            "schedule", "hours", "mean", "min", "max"
        );
        let mut last_spread: BTreeMap<String, f32> = BTreeMap::new();
        for r in rows.iter().filter(|r| r.hours >= lo && r.hours <= hi) {
            println!(
                "{:<14} {:>8.2} {:>8.3} {:>8.3} {:>8.3}",
                r.label, r.hours, r.mean, r.min, r.max
            );
            last_spread.insert(r.label.clone(), r.max - r.min);
        }
        println!("  spread at window end:");
        for (label, spread) in &last_spread {
            println!("    {label:<14} {spread:.3}");
        }
        println!();
    }
}
