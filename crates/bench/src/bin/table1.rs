//! Table I — server and client instance configurations, with the §IV-E
//! pricing the workspace derives from them.
//!
//! Run: `cargo run -p vc-bench --bin table1 --release`

use vc_cost::FleetCost;
use vc_simnet::table1;

fn main() {
    println!("Table I: Server and client instance configurations");
    println!(
        "{:<16} {:>5} {:>10} {:>8} {:>10} {:>9} {:>12}",
        "instance", "vCPU", "clock GHz", "RAM GB", "net Gbps", "$/h std", "$/h preempt"
    );
    let mut rows = vec![table1::server()];
    rows.extend(table1::client_types());
    for r in &rows {
        println!(
            "{:<16} {:>5} {:>10.1} {:>8.0} {:>10.0} {:>9.3} {:>12.3}",
            r.name,
            r.vcpus,
            r.clock_ghz,
            r.ram_gb,
            r.bandwidth_gbps,
            r.hourly_usd,
            r.hourly_usd_preemptible
        );
    }

    println!("\nDerived fleet pricing (the P5C5T2 fleet of §IV-E):");
    let fleet = table1::uniform_fleet(5);
    let cost = FleetCost::of(&fleet, 8.0);
    println!(
        "  standard    ${:.2}/h  -> ${:.2} for 8 h   (paper: $1.67/h, $13.4)",
        cost.standard_per_hour,
        cost.standard_total()
    );
    println!(
        "  preemptible ${:.2}/h  -> ${:.2} for 8 h   (paper: $0.50/h, $4)",
        cost.preemptible_per_hour,
        cost.preemptible_total()
    );
    println!(
        "  saving      {:.0}%                     (paper: 70%)",
        cost.saving() * 100.0
    );
}
