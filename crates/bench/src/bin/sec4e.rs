//! §IV-E — impact of preemptible instances.
//!
//! Reproduces:
//! 1. the cost table: $1.67/h vs $0.50/h for the P5C5T2 fleet (70 %
//!    saving), $13.4 vs $4 over the 8-hour run;
//! 2. the binomial timeout model `E[extra] = n·p·t_o` (50 min at p = 0.05,
//!    200 min at p = 0.20), validated three ways: closed form, Monte-Carlo
//!    over the wave process, and the full discrete-event fleet simulation
//!    with per-subtask Bernoulli preemptions;
//! 3. the cost-with-delay comparison: preemptible stays far cheaper even
//!    after paying for the stretched runtime.
//!
//! Run: `cargo run -p vc-bench --bin sec4e --release`

use vc_asgd::job::run_job;
use vc_asgd::JobConfig;
use vc_cost::{simulate_extra_time_s, FleetCost, TimeoutAnalysis};
use vc_simnet::{table1, PreemptionModel};

fn main() {
    // 1. Cost table.
    let fleet = table1::uniform_fleet(5);
    let cost = FleetCost::of(&fleet, 8.0);
    println!("P5C5T2 fleet (5 x 8 vCPU / 32 GB):");
    println!(
        "  standard:    ${:.2}/h, ${:.2} per 8 h run (paper: $1.67/h, $13.4)",
        cost.standard_per_hour,
        cost.standard_total()
    );
    println!(
        "  preemptible: ${:.2}/h, ${:.2} per 8 h run (paper: $0.50/h, $4.0)",
        cost.preemptible_per_hour,
        cost.preemptible_total()
    );
    println!("  saving: {:.0}% (paper: 70%)", cost.saving() * 100.0);

    // 2. Binomial model vs Monte-Carlo vs full DES.
    let a = TimeoutAnalysis::paper_p5c5t2();
    println!(
        "\nTimeout model: n = {} waves, t_e = {:.1} min, t_o = {:.0} min",
        a.n_waves(),
        a.t_e / 60.0,
        a.t_o / 60.0
    );
    println!(
        "{:>6} {:>16} {:>16} {:>18}",
        "p", "analytic (min)", "monte-carlo", "DES fleet (min)"
    );

    // Baseline DES run without preemption, for the delta.
    let base_h = des_hours(PreemptionModel::None, 0);
    for &p in &[0.05, 0.10, 0.20] {
        let analytic = a.expected_extra_s(p) / 60.0;
        let mc = simulate_extra_time_s(&a, p, 500, 42) / 60.0;
        // Average the DES over a few seeds: a single 40-epoch run has only
        // ~200 waves, so per-run variance is visible.
        let mut des = 0.0;
        let seeds = 3;
        for s in 0..seeds {
            des += des_hours(PreemptionModel::BernoulliPerSubtask { p }, s);
        }
        let des_extra_min = (des / seeds as f64 - base_h) * 60.0;
        println!("{p:>6.2} {analytic:>16.1} {mc:>16.1} {des_extra_min:>18.1}");
    }
    println!("(paper: 50 min expected at p = 0.05, 200 min at p = 0.20)");

    // 3. Cost with delay.
    println!("\nPreemptible cost including expected delay:");
    for &p in &[0.05, 0.20] {
        let extra_h = a.expected_extra_s(p) / 3600.0;
        let total = cost.preemptible_total_with_delay(extra_h);
        println!(
            "  p = {p:.2}: ${total:.2} (vs ${:.2} standard) — still {:.0}% cheaper",
            cost.standard_total(),
            (1.0 - total / cost.standard_total()) * 100.0
        );
    }
}

/// Total simulated hours of a timing-only P5C5T2 run under `preemption`.
fn des_hours(preemption: PreemptionModel, seed_offset: u64) -> f64 {
    let mut cfg = JobConfig::paper_default(42 + seed_offset).with_pct(5, 5, 2);
    cfg.epochs = 40;
    cfg.timing_only = true;
    cfg.preemption = preemption;
    run_job(cfg).expect("valid config").total_time_h
}
