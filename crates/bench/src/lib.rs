//! # vc-bench
//!
//! The experiment harness: one runner binary per table/figure of the paper
//! (see DESIGN.md §4 for the index) plus criterion micro-benchmarks.
//!
//! Every runner prints a human-readable table to stdout and writes a CSV
//! under `results/` so `fig5` (the zoom of `fig4`) and EXPERIMENTS.md can
//! consume stable artifacts.
//!
//! ## Scale knobs
//!
//! Real-training experiments honour two environment variables:
//!
//! * `REPRO_EPOCHS` — epochs per run (default 40, the paper's count).
//! * `REPRO_FAST=1` — shortcut to 12 epochs for a quick smoke pass.
//!
//! Timing-shape experiments (fig3, sec4d, sec4e) always run the full 40
//! epochs — they skip real training, so they are cheap at any scale.

pub mod legacy;

use std::io::Write;
use std::path::PathBuf;
use vc_asgd::JobReport;

/// Epochs for real-training experiment runs, honouring `REPRO_EPOCHS` /
/// `REPRO_FAST` (see crate docs).
pub fn repro_epochs() -> usize {
    if let Ok(v) = std::env::var("REPRO_EPOCHS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var("REPRO_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        12
    } else {
        40
    }
}

/// The directory figure CSVs land in (`results/` at the workspace root,
/// falling back to the current directory).
pub fn results_dir() -> PathBuf {
    let candidates = [PathBuf::from("results"), PathBuf::from("../../results")];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    std::fs::create_dir_all("results").ok();
    PathBuf::from("results")
}

/// Writes `content` to `results/<name>` and reports the path on stdout.
pub fn write_results(name: &str, content: &str) {
    let path = results_dir().join(name);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
        Ok(()) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write {}: {e}", path.display()),
    }
}

/// Renders a set of labelled runs as one long-format CSV:
/// `label,epoch,alpha,hours,mean_acc,min_acc,max_acc,test_acc`.
pub fn runs_to_csv(runs: &[(String, JobReport)]) -> String {
    let mut out = String::from("label,epoch,alpha,hours,mean_acc,min_acc,max_acc,test_acc\n");
    for (label, report) in runs {
        for e in &report.epochs {
            out.push_str(&format!(
                "{label},{},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
                e.epoch,
                e.alpha,
                e.end_time_h,
                e.mean_val_acc,
                e.min_val_acc,
                e.max_val_acc,
                e.test_acc.map(|t| format!("{t:.4}")).unwrap_or_default(),
            ));
        }
    }
    out
}

/// Prints an epoch table for one run, paper-style.
pub fn print_run(label: &str, report: &JobReport) {
    println!("## {label}");
    println!(
        "{:>5} {:>7} {:>8} {:>7} {:>7} {:>7}",
        "epoch", "alpha", "hours", "mean", "min", "max"
    );
    for e in &report.epochs {
        println!(
            "{:>5} {:>7.3} {:>8.3} {:>7.3} {:>7.3} {:>7.3}",
            e.epoch, e.alpha, e.end_time_h, e.mean_val_acc, e.min_val_acc, e.max_val_acc
        );
    }
    println!(
        "   => total {:.2} h, final val {:.3}, test {:.3}, lost updates {}, timeouts {}\n",
        report.total_time_h,
        report.final_val_acc,
        report.final_test_acc,
        report.store_ops.lost_updates,
        report.server_metrics.timeouts
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_epochs_defaults_sane() {
        // Cannot mutate the environment safely in parallel tests; just pin
        // the unset/preset behaviour.
        let n = repro_epochs();
        assert!(n >= 1);
    }

    #[test]
    fn csv_shape() {
        let runs: Vec<(String, JobReport)> = Vec::new();
        let csv = runs_to_csv(&runs);
        assert!(csv.starts_with("label,epoch"));
    }
}
