//! Frozen copy of the pre-optimization compute path, kept for honest
//! before/after numbers in `bench_train`.
//!
//! The current `vc_tensor::ops` kernels are cache-blocked micro-kernels
//! running on the persistent worker pool; the originals were branchy
//! row-parallel loops fanned out over **freshly spawned scoped threads on
//! every call**, and the layers cloned tensors at every stage boundary.
//! This module preserves that old behaviour verbatim (kernels, per-call
//! thread spawning, per-step allocation churn) so the benchmark's "before"
//! column measures the real seed implementation rather than a strawman.

use vc_tensor::ops::{col2im, im2col, ConvGeom};
use vc_tensor::{NormalSampler, Tensor};

/// Threshold (in output elements) below which the legacy matmuls ran
/// serially, copied from the seed kernels.
const PAR_THRESHOLD: usize = 64 * 64;

/// The seed shim's thread count: `available_parallelism` capped at 8.
pub fn legacy_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The seed `rayon` shim's fan-out: split the chunk list evenly and spawn
/// one scoped OS thread per portion — per call, no pool.
fn spawn_per_call_chunks<F>(out: &mut [f32], chunk_size: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let mut chunks: Vec<(usize, &mut [f32])> = out.chunks_mut(chunk_size).enumerate().collect();
    let threads = legacy_threads().min(chunks.len());
    if threads <= 1 {
        for (i, chunk) in chunks {
            f(i, chunk);
        }
        return;
    }
    let per = chunks.len().div_ceil(threads);
    std::thread::scope(|s| {
        while !chunks.is_empty() {
            let take = per.min(chunks.len());
            let portion: Vec<(usize, &mut [f32])> = chunks.drain(..take).collect();
            let f = &f;
            s.spawn(move || {
                for (i, chunk) in portion {
                    f(i, chunk);
                }
            });
        }
    });
}

/// The seed `matmul`: `i-k-j` loops with an `aik == 0.0` skip, rows fanned
/// out over spawn-per-call threads.
pub fn legacy_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    assert_eq!(k, b.dims()[0], "legacy_matmul shape mismatch");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    let row_kernel = |i: usize, out_row: &mut [f32]| {
        for p in 0..k {
            let aik = ad[i * k + p];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        spawn_per_call_chunks(&mut out, n, row_kernel);
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// The seed `matmul_at_b`: serial `p-i-j` accumulation with a zero skip.
pub fn legacy_matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "legacy_matmul_at_b inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// The seed `matmul_a_bt`: per-output-element dot products, rows fanned out
/// over spawn-per-call threads.
pub fn legacy_matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "legacy_matmul_a_bt inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let kernel = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        spawn_per_call_chunks(&mut out, n, kernel);
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            kernel(i, row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `[batch*oh*ow, out_ch]` rows into `[batch, out_ch, oh, ow]` images, as
/// the seed `Conv2d` did (fresh output vector per call).
fn rows_to_images(flat: &Tensor, batch: usize, out_ch: usize, oh: usize, ow: usize) -> Tensor {
    let src = flat.data();
    let mut out = vec![0.0f32; batch * out_ch * oh * ow];
    for b in 0..batch {
        for p in 0..oh * ow {
            let row = (b * oh * ow + p) * out_ch;
            for c in 0..out_ch {
                out[((b * out_ch + c) * oh * ow) + p] = src[row + c];
            }
        }
    }
    Tensor::from_vec(out, &[batch, out_ch, oh, ow])
}

/// Inverse of [`rows_to_images`].
fn images_to_rows(img: &Tensor) -> Tensor {
    let dims = img.dims();
    let (batch, ch, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
    let src = img.data();
    let mut out = vec![0.0f32; batch * oh * ow * ch];
    for b in 0..batch {
        for c in 0..ch {
            for p in 0..oh * ow {
                out[(b * oh * ow + p) * ch + c] = src[(b * ch + c) * oh * ow + p];
            }
        }
    }
    Tensor::from_vec(out, &[batch * oh * ow, ch])
}

struct LegacyConv {
    kernel: Tensor,
    bias: Tensor,
    dkernel: Tensor,
    dbias: Tensor,
    in_ch: usize,
    out_ch: usize,
    geom0: ConvGeom,
    cols: Option<Tensor>,
    batch: usize,
}

impl LegacyConv {
    fn new(in_ch: usize, out_ch: usize, h: usize, w: usize, s: &mut NormalSampler) -> Self {
        let fan_in = in_ch * 9;
        LegacyConv {
            kernel: Tensor::he_normal(&[out_ch, fan_in], fan_in, s),
            bias: Tensor::zeros(&[out_ch]),
            dkernel: Tensor::zeros(&[out_ch, fan_in]),
            dbias: Tensor::zeros(&[out_ch]),
            in_ch,
            out_ch,
            geom0: ConvGeom {
                h,
                w,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
            cols: None,
            batch: 0,
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let batch = x.dims()[0];
        let cols = im2col(x, self.in_ch, self.geom0);
        let flat = legacy_matmul_a_bt(&cols, &self.kernel).add_row_broadcast(&self.bias);
        let y = rows_to_images(
            &flat,
            batch,
            self.out_ch,
            self.geom0.out_h(),
            self.geom0.out_w(),
        );
        self.cols = Some(cols);
        self.batch = batch;
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cols = self.cols.as_ref().expect("legacy conv backward");
        let dy_rows = images_to_rows(dy);
        self.dkernel.add_assign(&legacy_matmul_at_b(&dy_rows, cols));
        self.dbias.add_assign(&dy_rows.sum_axis0());
        let dcols = legacy_matmul(&dy_rows, &self.kernel);
        col2im(&dcols, self.batch, self.in_ch, self.geom0)
    }
}

struct LegacyDense {
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    x: Option<Tensor>,
}

impl LegacyDense {
    fn new(input: usize, output: usize, s: &mut NormalSampler) -> Self {
        LegacyDense {
            w: Tensor::he_normal(&[input, output], input, s),
            b: Tensor::zeros(&[output]),
            dw: Tensor::zeros(&[input, output]),
            db: Tensor::zeros(&[output]),
            x: None,
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.x = Some(x.clone());
        legacy_matmul(x, &self.w).add_row_broadcast(&self.b)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.x.as_ref().expect("legacy dense backward");
        self.dw.add_assign(&legacy_matmul_at_b(x, dy));
        self.db.add_assign(&dy.sum_axis0());
        legacy_matmul_a_bt(dy, &self.w)
    }
}

fn relu_forward(x: &Tensor) -> (Tensor, Vec<bool>) {
    let mask = x.data().iter().map(|&v| v > 0.0).collect();
    (x.map(|v| v.max(0.0)), mask)
}

fn relu_backward(dy: &Tensor, mask: &[bool]) -> Tensor {
    let data = dy
        .data()
        .iter()
        .zip(mask)
        .map(|(&g, &m)| if m { g } else { 0.0 })
        .collect();
    Tensor::from_vec(data, dy.dims())
}

fn maxpool_forward(x: &Tensor) -> (Tensor, Vec<usize>) {
    let d = x.dims();
    let (b, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (oh, ow) = (h / 2, w / 2);
    let src = x.data();
    let mut out = vec![0.0f32; b * c * oh * ow];
    let mut arg = vec![0usize; out.len()];
    for bc in 0..b * c {
        let plane = &src[bc * h * w..(bc + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best_idx = (2 * oy) * w + 2 * ox;
                let mut best = plane[best_idx];
                for (dy, dx) in [(0, 1), (1, 0), (1, 1)] {
                    let idx = (2 * oy + dy) * w + 2 * ox + dx;
                    if plane[idx] > best {
                        best = plane[idx];
                        best_idx = idx;
                    }
                }
                let o = bc * oh * ow + oy * ow + ox;
                out[o] = best;
                arg[o] = bc * h * w + best_idx;
            }
        }
    }
    (Tensor::from_vec(out, &[b, c, oh, ow]), arg)
}

fn maxpool_backward(dy: &Tensor, arg: &[usize], in_dims: &[usize]) -> Tensor {
    let mut dx = vec![0.0f32; in_dims.iter().product()];
    for (g, &i) in dy.data().iter().zip(arg) {
        dx[i] += g;
    }
    Tensor::from_vec(dx, in_dims)
}

/// The seed-era `small_cnn` training path, hard-wired: conv(→16)–relu–pool,
/// conv(→32)–relu–pool, flatten, dense(→64)–relu, dense(→classes), trained
/// with flat-vector SGD exactly as the old trainer did (fresh parameter and
/// gradient vectors gathered every step).
pub struct LegacySmallCnn {
    conv1: LegacyConv,
    conv2: LegacyConv,
    fc1: LegacyDense,
    fc2: LegacyDense,
    input: [usize; 3],
    classes: usize,
}

impl LegacySmallCnn {
    /// Builds the network for `[ch, h, w]` inputs (h, w divisible by 4).
    pub fn new(input: [usize; 3], classes: usize, seed: u64) -> Self {
        let (ch, h, w) = (input[0], input[1], input[2]);
        assert!(h % 4 == 0 && w % 4 == 0);
        let mut s = NormalSampler::seed_from(seed);
        LegacySmallCnn {
            conv1: LegacyConv::new(ch, 16, h, w, &mut s),
            conv2: LegacyConv::new(16, 32, h / 2, w / 2, &mut s),
            fc1: LegacyDense::new(32 * (h / 4) * (w / 4), 64, &mut s),
            fc2: LegacyDense::new(64, classes, &mut s),
            input,
            classes,
        }
    }

    /// One full forward+backward+SGD step on `(x, labels)`, allocating as
    /// the seed implementation did. Returns the batch loss.
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> f32 {
        // Forward, cloning at each stage boundary like the old Sequential.
        let c1 = self.conv1.forward(x);
        let (r1, m1) = relu_forward(&c1);
        let (p1, a1) = maxpool_forward(&r1);
        let c2 = self.conv2.forward(&p1);
        let (r2, m2) = relu_forward(&c2);
        let (p2, a2) = maxpool_forward(&r2);
        let batch = x.dims()[0];
        let flat_len = p2.numel() / batch;
        let f = p2.clone().reshape(&[batch, flat_len]);
        let d1 = self.fc1.forward(&f);
        let (r3, m3) = relu_forward(&d1);
        let logits = self.fc2.forward(&r3);

        // Softmax cross-entropy, as the shared loss does.
        let (loss, dlogits) = vc_nn::SoftmaxCrossEntropy::loss_and_grad(&logits, labels);

        // Backward.
        self.zero_grads();
        let dr3 = self.fc2.backward(&dlogits);
        let dd1 = relu_backward(&dr3, &m3);
        let df = self.fc1.backward(&dd1);
        let dp2 = df.clone().reshape(p2.dims());
        let dr2 = maxpool_backward(&dp2, &a2, r2.dims());
        let dc2 = relu_backward(&dr2, &m2);
        let dp1 = self.conv2.backward(&dc2);
        let dr1 = maxpool_backward(&dp1, &a1, r1.dims());
        let dc1 = relu_backward(&dr1, &m1);
        let _ = self.conv1.backward(&dc1);

        // Flat-vector SGD with per-step gather/scatter, like the old loop.
        let mut params = self.params_flat();
        let grads = self.grads_flat();
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= lr * g;
        }
        self.load_params(&params);
        loss
    }

    fn tensors(&self) -> [&Tensor; 8] {
        [
            &self.conv1.kernel,
            &self.conv1.bias,
            &self.conv2.kernel,
            &self.conv2.bias,
            &self.fc1.w,
            &self.fc1.b,
            &self.fc2.w,
            &self.fc2.b,
        ]
    }

    fn grad_tensors(&self) -> [&Tensor; 8] {
        [
            &self.conv1.dkernel,
            &self.conv1.dbias,
            &self.conv2.dkernel,
            &self.conv2.dbias,
            &self.fc1.dw,
            &self.fc1.db,
            &self.fc2.dw,
            &self.fc2.db,
        ]
    }

    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for t in self.tensors() {
            out.extend_from_slice(t.data());
        }
        out
    }

    fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for t in self.grad_tensors() {
            out.extend_from_slice(t.data());
        }
        out
    }

    fn load_params(&mut self, src: &[f32]) {
        let mut off = 0;
        for t in [
            &mut self.conv1.kernel,
            &mut self.conv1.bias,
            &mut self.conv2.kernel,
            &mut self.conv2.bias,
            &mut self.fc1.w,
            &mut self.fc1.b,
            &mut self.fc2.w,
            &mut self.fc2.b,
        ] {
            let n = t.numel();
            t.data_mut().copy_from_slice(&src[off..off + n]);
            off += n;
        }
    }

    fn zero_grads(&mut self) {
        for t in [
            &mut self.conv1.dkernel,
            &mut self.conv1.dbias,
            &mut self.conv2.dkernel,
            &mut self.conv2.dbias,
            &mut self.fc1.dw,
            &mut self.fc1.db,
            &mut self.fc2.dw,
            &mut self.fc2.db,
        ] {
            t.map_inplace(|_| 0.0);
        }
    }

    /// Input dims (for building matching batches).
    pub fn input_dims(&self) -> [usize; 3] {
        self.input
    }

    /// Class count.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_tensor::ops::matmul_naive;
    use vc_tensor::{approx_eq, TEST_EPS};

    #[test]
    fn legacy_kernels_agree_with_naive() {
        let mut s = NormalSampler::seed_from(1);
        let a = Tensor::randn(&[7, 5], 0.0, 1.0, &mut s);
        let b = Tensor::randn(&[5, 9], 0.0, 1.0, &mut s);
        assert!(approx_eq(
            &legacy_matmul(&a, &b),
            &matmul_naive(&a, &b),
            TEST_EPS
        ));
        let at = a.transpose();
        assert!(approx_eq(
            &legacy_matmul_at_b(&at, &b),
            &matmul_naive(&a, &b),
            TEST_EPS
        ));
        let bt = b.transpose();
        assert!(approx_eq(
            &legacy_matmul_a_bt(&a, &bt),
            &matmul_naive(&a, &b),
            TEST_EPS
        ));
    }

    #[test]
    fn legacy_cnn_trains_without_nans() {
        let mut net = LegacySmallCnn::new([1, 8, 8], 3, 2);
        let mut s = NormalSampler::seed_from(3);
        let x = Tensor::randn(&[4, 1, 8, 8], 0.0, 1.0, &mut s);
        let labels = [0usize, 1, 2, 0];
        let first = net.train_step(&x, &labels, 0.05);
        let mut last = first;
        for _ in 0..5 {
            last = net.train_step(&x, &labels, 0.05);
        }
        assert!(first.is_finite() && last.is_finite());
        assert!(last < first, "loss {first} -> {last}");
    }
}
