//! Criterion benchmark of one client subtask: the unit of work a volunteer
//! executes per workunit (shard download excluded — that is simulated).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_data::{ShardSet, SyntheticSpec};
use vc_optim::{train_minibatch, OptimizerSpec};

fn bench_subtask(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_subtask");
    group.sample_size(10);

    let mut data = SyntheticSpec::cifar_like(7);
    data.train_n = 1000;
    let (train, _, _) = data.generate();
    let shards = ShardSet::split(&train, 10); // 100 samples per shard
    let spec = vc_nn::spec::small_cnn(&data.img, data.classes);
    let init = spec.build(1).params_flat();

    group.bench_function("small_cnn_100samples_2local", |b| {
        b.iter(|| {
            let mut model = spec.build(1);
            model.set_params_flat(&init);
            let mut opt = OptimizerSpec::paper_adam().build(init.len());
            let mut rng = StdRng::seed_from_u64(3);
            let d = &shards.shard(0).data;
            train_minibatch(
                &mut model, &mut opt, &d.images, &d.labels, 32, 2, 5.0, &mut rng,
            );
            model.params_flat()
        });
    });

    let mlp = vc_nn::spec::mlp(&data.img, 32, data.classes);
    let mlp_init = mlp.build(1).params_flat();
    group.bench_function("mlp_100samples_2local", |b| {
        b.iter(|| {
            let mut model = mlp.build(1);
            model.set_params_flat(&mlp_init);
            let mut opt = OptimizerSpec::paper_adam().build(mlp_init.len());
            let mut rng = StdRng::seed_from_u64(3);
            let d = &shards.shard(0).data;
            train_minibatch(
                &mut model, &mut opt, &d.images, &d.labels, 32, 2, 5.0, &mut rng,
            );
            model.params_flat()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_subtask);
criterion_main!(benches);
