//! Criterion micro-benchmarks of the VC-ASGD assimilation path: the Eq. (1)
//! blend and the full strong/eventual store round-trips, at the experiment
//! model's parameter count and at the paper's 4.97 M parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use vc_asgd::{AlphaSchedule, VcAsgdAssimilator};
use vc_kvstore::{Consistency, VersionedStore};

fn bench_blend(c: &mut Criterion) {
    let mut group = c.benchmark_group("blend_eq1");
    for n in [50_000usize, 4_972_746] {
        let mut ws = vec![0.5f32; n];
        let wc = vec![0.25f32; n];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| vc_asgd::alpha::blend_eq1(&mut ws, &wc, 0.95));
        });
    }
    group.finish();
}

fn bench_assimilate(c: &mut Criterion) {
    let mut group = c.benchmark_group("assimilate");
    group.sample_size(20);
    let n = 250_000usize;
    let client = vec![0.1f32; n];

    group.bench_function("strong_250k", |b| {
        let assim = VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            Consistency::Strong,
            AlphaSchedule::Const(0.95),
        );
        assim.seed_params(&vec![0.0; n]);
        b.iter(|| assim.assimilate_strong(&client, 1));
    });

    group.bench_function("eventual_250k", |b| {
        let assim = VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            Consistency::Eventual,
            AlphaSchedule::Const(0.95),
        );
        assim.seed_params(&vec![0.0; n]);
        b.iter(|| {
            let (snap, v) = assim.begin_eventual();
            assim.commit_eventual(snap, v, &client, 1)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_blend, bench_assimilate);
criterion_main!(benches);
