//! Criterion micro-benchmarks of the tensor kernels behind client training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vc_tensor::ops::{im2col, matmul, ConvGeom};
use vc_tensor::{NormalSampler, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let mut s = NormalSampler::seed_from(1);
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
        let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut s);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    // The experiment model's first conv: batch 32, 3ch 16x16, 3x3 kernel.
    let mut s = NormalSampler::seed_from(2);
    let input = Tensor::randn(&[32, 3, 16, 16], 0.0, 1.0, &mut s);
    let geom = ConvGeom {
        h: 16,
        w: 16,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    group.bench_function("batch32_3x16x16_k3", |b| {
        b.iter(|| im2col(&input, 3, geom));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("param_codec");
    let mut s = NormalSampler::seed_from(3);
    let params = Tensor::randn(&[50_000], 0.0, 1.0, &mut s);
    group.bench_function("encode_50k", |b| {
        b.iter(|| vc_tensor::encode_f32s(params.data()));
    });
    let blob = vc_tensor::encode_f32s(params.data());
    group.bench_function("decode_50k", |b| {
        b.iter(|| vc_tensor::decode_f32s(&blob).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_im2col, bench_codec);
criterion_main!(benches);
