//! Criterion micro-benchmarks of the parameter store — the real-engine
//! counterpart of §IV-D's Redis/MySQL comparison.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vc_kvstore::VersionedStore;

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore_update");
    for size_kb in [64usize, 1024, 4096] {
        let payload = Bytes::from(vec![0u8; size_kb * 1024]);
        group.throughput(Throughput::Bytes((size_kb * 1024) as u64));

        group.bench_with_input(
            BenchmarkId::new("eventual_rmw", size_kb),
            &payload,
            |b, payload| {
                let store = VersionedStore::new();
                store.put("w", payload.clone());
                b.iter(|| {
                    let (_, v) = store.get("w");
                    store.put_versioned("w", v, payload.clone())
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("strong_transact", size_kb),
            &payload,
            |b, payload| {
                let store = VersionedStore::new();
                store.put("w", payload.clone());
                b.iter(|| store.transact("w", |cur, _| (cur.clone(), cur.len())));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
