#!/usr/bin/env bash
# Two-phase profile-guided-optimization build for the compute substrate.
#
# Phase 1 builds `bench_train` with -Cprofile-generate and drives it through
# the --smoke workload, which exercises exactly the hot paths training lives
# in: the blocked GEMM microkernel, the direct 3x3 conv kernels (forward,
# dx, dK), the im2col lowering, and the vendored rayon shim's dispatch.
# Phase 2 merges the raw profiles with llvm-profdata and rebuilds the
# release binaries with -Cprofile-use so the optimizer lays out those paths
# from measured branch weights instead of heuristics.
#
# Usage: deploy/pgo-build.sh [profile-dir]
#   profile-dir defaults to target/pgo-profiles. The final optimized
#   binaries land in target/release/ as usual.
set -euo pipefail

cd "$(dirname "$0")/.."

PGO_DIR="${1:-$PWD/target/pgo-profiles}"

# llvm-profdata ships with rustup's llvm-tools component inside the rustc
# sysroot; fall back to a system copy on PATH. The merge step must use an
# LLVM at least as new as rustc's, which both of these satisfy.
HOST="$(rustc -vV | sed -n 's/^host: //p')"
SYSROOT="$(rustc --print sysroot)"
PROFDATA="$SYSROOT/lib/rustlib/$HOST/bin/llvm-profdata"
if [[ ! -x "$PROFDATA" ]]; then
    PROFDATA="$(command -v llvm-profdata || true)"
fi
if [[ -z "$PROFDATA" || ! -x "$PROFDATA" ]]; then
    echo "error: llvm-profdata not found" >&2
    echo "  looked in: $SYSROOT/lib/rustlib/$HOST/bin/llvm-profdata" >&2
    echo "  and on PATH. Install it with: rustup component add llvm-tools" >&2
    exit 1
fi

rm -rf "$PGO_DIR"
mkdir -p "$PGO_DIR"

echo "== phase 1/2: instrumented build =="
RUSTFLAGS="-Cprofile-generate=$PGO_DIR" \
    cargo build --release -p vc-bench --bin bench_train

echo "== phase 1/2: profiling run (bench_train --smoke) =="
# VC_THREADS=2 profiles the cross-thread dispatch path as well as the
# kernels; callers can override it from the environment.
VC_THREADS="${VC_THREADS:-2}" ./target/release/bench_train --smoke

echo "== merging raw profiles =="
if ! "$PROFDATA" merge -o "$PGO_DIR/merged.profdata" "$PGO_DIR"; then
    echo "error: profile merge failed" >&2
    echo "  $PROFDATA is likely older than rustc's LLVM" \
         "($(rustc -vV | sed -n 's/^LLVM version: //p'))." >&2
    echo "  Install the matching tool with: rustup component add llvm-tools" >&2
    exit 1
fi

echo "== phase 2/2: optimized rebuild =="
RUSTFLAGS="-Cprofile-use=$PGO_DIR/merged.profdata" \
    cargo build --release -p vc-bench --bin bench_train

echo "done: target/release/bench_train rebuilt with $PGO_DIR/merged.profdata"
